// Property sweep for the crash-tolerance extension: random crash times
// injected into resolution scenarios. Invariants: the simulation always
// quiesces, no internal CHECK fires, survivors that handled a given round
// agree on the resolved exception, and with a committee >= 2 the survivors
// always finish the action even if the designated resolver dies.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "util/rng.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

class CrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashSweep, RandomCrashDuringResolution) {
  Rng rng(GetParam() * 1337 + 5);
  const int n = 3 + static_cast<int>(rng.below(4));  // 3..6
  World w;
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  std::vector<NodeId> nodes;
  for (int i = 0; i < n; ++i) {
    const NodeId node = w.add_node();
    nodes.push_back(node);
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1), node));
    ids.push_back(objects.back()->id());
  }
  ex::ExceptionTree tree;
  const auto cover = tree.declare("cover");
  tree.declare("ea", cover);
  tree.declare("eb", cover);
  tree.declare("peer_crash");
  const auto& decl = w.actions().declare("A", std::move(tree));
  const auto& inst = w.actions().create_instance(decl, ids);
  for (auto* o : objects) {
    ASSERT_TRUE(o->enter(
        inst.instance,
        EnterConfig::with(uniform_handlers(
                              decl.tree(),
                              ex::HandlerResult::recovered(rng.below(300))))
            .committee(2)
            .on_peer_crash(decl.tree().find("peer_crash"))));
  }
  // 1-2 raisers at random times.
  const int raisers = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < raisers; ++i) {
    Participant* p = objects[rng.below(objects.size())];
    const sim::Time t = 1000 + static_cast<sim::Time>(rng.below(500));
    const bool which = rng.chance(0.5);
    w.at(t, [p, which] {
      if (!p->in_action()) return;
      if (p->at_acceptance_line()) return;
      if (p->resolver_state() != resolve::ResolverCore::State::kNormal) {
        return;
      }
      p->raise(which ? "ea" : "eb");
    });
  }
  // One victim crashes at a random point around the resolution window.
  const int victim = static_cast<int>(rng.below(objects.size()));
  const sim::Time crash_at = 900 + static_cast<sim::Time>(rng.below(1200));
  w.at(crash_at, [&, victim] {
    w.network().set_node_up(nodes[victim], false);
    for (int i = 0; i < n; ++i) {
      if (i == victim) continue;
      objects[i]->notify_peer_crashed(objects[victim]->id());
    }
  });
  // Survivors that are still idle eventually complete.
  for (auto* o : objects) {
    for (sim::Time t = 6000; t <= 30000; t += 2000) {
      w.at(t, [o] {
        if (o->in_action() && !o->at_acceptance_line() &&
            o->resolver_state() == resolve::ResolverCore::State::kNormal) {
          o->complete();
        }
      });
    }
  }
  w.run();

  // Survivors all finished the action.
  for (int i = 0; i < n; ++i) {
    if (i == victim) continue;
    EXPECT_FALSE(objects[i]->in_action())
        << objects[i]->name() << " stuck, seed " << GetParam();
  }
  // Agreement among survivors per round.
  std::map<std::uint32_t, ExceptionId> seen;
  for (int i = 0; i < n; ++i) {
    if (i == victim) continue;
    for (const auto& h : objects[i]->handled()) {
      auto [it, inserted] = seen.emplace(h.round, h.resolved);
      if (!inserted) {
        EXPECT_EQ(it->second, h.resolved)
            << "survivor disagreement, seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweep,
                         ::testing::Range<std::uint64_t>(1, 81));

}  // namespace
}  // namespace caa
