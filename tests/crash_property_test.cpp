// Property sweep for the crash-tolerance extension: random crash times
// injected into resolution scenarios. Invariants: the simulation always
// quiesces, no internal CHECK fires, survivors that handled a given round
// agree on the resolved exception, and with a committee >= 2 the survivors
// always finish the action even if the designated resolver dies.
//
// Each seed is an independent world; the 80-seed sweep runs as one
// campaign across every core, collecting violations as strings instead of
// one TEST_P per seed.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "caa/world.h"
#include "run/campaign.h"
#include "util/rng.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

run::WorldResult run_crash_trial(std::uint64_t seed) {
  std::vector<std::string> violations;
  Rng rng(seed * 1337 + 5);
  const int n = 3 + static_cast<int>(rng.below(4));  // 3..6
  World w;
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  std::vector<NodeId> nodes;
  for (int i = 0; i < n; ++i) {
    const NodeId node = w.add_node();
    nodes.push_back(node);
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1), node));
    ids.push_back(objects.back()->id());
  }
  ex::ExceptionTree tree;
  const auto cover = tree.declare("cover");
  tree.declare("ea", cover);
  tree.declare("eb", cover);
  tree.declare("peer_crash");
  const auto& decl = w.actions().declare("A", std::move(tree));
  const auto& inst = w.actions().create_instance(decl, ids);
  for (auto* o : objects) {
    if (!o->enter(inst.instance,
                  EnterConfig::with(
                      uniform_handlers(decl.tree(),
                                       ex::HandlerResult::recovered(
                                           rng.below(300))))
                      .committee(2)
                      .on_peer_crash(decl.tree().find("peer_crash")))) {
      run::WorldResult r;
      r.ok = false;
      r.error = "enter refused for " + o->name();
      return r;
    }
  }
  // 1-2 raisers at random times.
  const int raisers = 1 + static_cast<int>(rng.below(2));
  for (int i = 0; i < raisers; ++i) {
    Participant* p = objects[rng.below(objects.size())];
    const sim::Time t = 1000 + static_cast<sim::Time>(rng.below(500));
    const bool which = rng.chance(0.5);
    w.at(t, [p, which] {
      if (!p->in_action()) return;
      if (p->at_acceptance_line()) return;
      if (p->resolver_state() != resolve::ResolverCore::State::kNormal) {
        return;
      }
      p->raise(which ? "ea" : "eb");
    });
  }
  // One victim crashes at a random point around the resolution window.
  const int victim = static_cast<int>(rng.below(objects.size()));
  const sim::Time crash_at = 900 + static_cast<sim::Time>(rng.below(1200));
  w.at(crash_at, [&, victim] {
    w.network().set_node_up(nodes[victim], false);
    for (int i = 0; i < n; ++i) {
      if (i == victim) continue;
      objects[i]->notify_peer_crashed(objects[victim]->id());
    }
  });
  // Survivors that are still idle eventually complete.
  for (auto* o : objects) {
    for (sim::Time t = 6000; t <= 30000; t += 2000) {
      w.at(t, [o] {
        if (o->in_action() && !o->at_acceptance_line() &&
            o->resolver_state() == resolve::ResolverCore::State::kNormal) {
          o->complete();
        }
      });
    }
  }
  run::WorldResult r = run::measure("crash#" + std::to_string(seed), w,
                                    [&w] { return w.run(); });

  // Survivors all finished the action.
  for (int i = 0; i < n; ++i) {
    if (i == victim) continue;
    if (objects[i]->in_action()) {
      violations.push_back(objects[i]->name() + " stuck");
    }
  }
  // Agreement among survivors per round.
  std::map<std::uint32_t, ExceptionId> seen;
  for (int i = 0; i < n; ++i) {
    if (i == victim) continue;
    for (const auto& h : objects[i]->handled()) {
      auto [it, inserted] = seen.emplace(h.round, h.resolved);
      if (!inserted && it->second != h.resolved) {
        std::ostringstream msg;
        msg << "survivor disagreement in round " << h.round;
        violations.push_back(msg.str());
      }
    }
  }

  if (!violations.empty()) {
    r.ok = false;
    std::ostringstream all;
    for (std::size_t i = 0; i < violations.size(); ++i) {
      if (i != 0) all << "; ";
      all << violations[i];
    }
    r.error = all.str();
  }
  return r;
}

TEST(CrashSweep, RandomCrashDuringResolution) {
  run::Campaign campaign({.seed = 42, .threads = 0});
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    campaign.add("crash#" + std::to_string(seed),
                 [seed](const run::WorldContext&) {
                   return run_crash_trial(seed);
                 });
  }
  const run::CampaignResult result = campaign.run();
  EXPECT_TRUE(result.all_ok())
      << result.failed << " seed(s) violated invariants; first: "
      << result.first_error();
  EXPECT_GT(result.total_events, 0);
}

TEST(CrashSweep, SweepIsThreadCountInvariant) {
  auto sweep_with = [](unsigned threads) {
    run::Campaign campaign({.seed = 42, .threads = threads});
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      campaign.add("crash#" + std::to_string(seed),
                   [seed](const run::WorldContext&) {
                     return run_crash_trial(seed);
                   });
    }
    return campaign.run();
  };
  const run::CampaignResult serial = sweep_with(1);
  const run::CampaignResult parallel = sweep_with(8);
  ASSERT_TRUE(serial.all_ok()) << serial.first_error();
  ASSERT_TRUE(parallel.all_ok()) << parallel.first_error();
  EXPECT_EQ(serial.merged_checksum, parallel.merged_checksum);
  EXPECT_EQ(serial.merged_metrics.to_string(),
            parallel.merged_metrics.to_string());
}

}  // namespace
}  // namespace caa
