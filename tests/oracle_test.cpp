// Unit tests for the invariant oracle (src/fault/oracle.h): one test per
// invariant, each planting the smallest state that should trip it, plus a
// clean-world control. The explorer and the chaos campaign both lean on
// this oracle; these tests pin down exactly what it can and cannot see.
#include <gtest/gtest.h>

#include <string>

#include "caa/world.h"
#include "fault/oracle.h"
#include "txn/atomic_object.h"
#include "txn/txn_manager.h"

namespace caa::fault {
namespace {

using action::EnterConfig;
using action::uniform_handlers;

ex::ExceptionTree engine_tree() {
  ex::ExceptionTree tree;
  const auto emergency = tree.declare("emergency_engine_loss_exception");
  tree.declare("left_engine_exception", emergency);
  tree.declare("right_engine_exception", emergency);
  tree.freeze();
  return tree;
}

EnterConfig recovered_config(const ex::ExceptionTree& tree) {
  return EnterConfig::with(
      uniform_handlers(tree, ex::HandlerResult::recovered()));
}

bool any_violation_contains(const OracleReport& report,
                            const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

// A completed Example-1-style run satisfies every invariant.
TEST(Oracle, CleanWorldPassesEveryInvariant) {
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  w.at(1000, [&] { o1.raise("left_engine_exception"); });
  w.run();

  OracleOptions options;
  options.deadline = w.simulator().now();
  const OracleReport report = check_invariants(w, options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.summary(), "");
}

// Quiescence: an event still pending at the deadline is a violation.
TEST(Oracle, DetectsNonQuiescentWorld) {
  World w;
  w.add_participant("O1");
  w.at(5000, [] {});  // never executed: the world is not run

  const OracleReport report = check_invariants(w, {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_violation_contains(report, "not quiescent"))
      << report.summary();
}

// Stuck survivor: a live participant still inside an action at the end.
TEST(Oracle, DetectsStuckSurvivor) {
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  w.run();  // nobody raises, nobody completes: both wedge inside A1

  OracleOptions options;
  options.deadline = w.simulator().now();
  const OracleReport report = check_invariants(w, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_violation_contains(report, "O1 stuck in action"))
      << report.summary();
  EXPECT_TRUE(any_violation_contains(report, "O2 stuck in action"));
  // The stuck check is scoped to live nodes: quiescence itself is fine.
  EXPECT_FALSE(any_violation_contains(report, "not quiescent"));
}

// Survivor agreement: two live participants with different resolved
// exceptions for the same (action, round) is a disagreement.
TEST(Oracle, DetectsSurvivorDisagreement) {
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  w.at(1000, [&] { o1.raise("left_engine_exception"); });
  w.run();
  ASSERT_EQ(o1.handled().size(), 1u);
  ASSERT_EQ(o2.handled().size(), 1u);

  // Rewrite O2's record of the same round to a different exception — the
  // smallest possible divergence.
  action::HandledRecord forged = o2.handled().back();
  forged.resolved = decl.tree().find("emergency_engine_loss_exception");
  ASSERT_NE(forged.resolved, o2.handled().back().resolved);
  o2.debug_inject_handled(forged);

  OracleOptions options;
  options.deadline = w.simulator().now();
  const OracleReport report = check_invariants(w, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_violation_contains(report, "resolution disagreement"))
      << report.summary();
}

// Crashed participants are exempt from the stuck and agreement checks: a
// commit applied right before a fail-stop crash is unknowable, not wrong.
TEST(Oracle, SkipsCrashedNodesInStuckAndAgreement) {
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  w.at(1000, [&] { o1.raise("left_engine_exception"); });
  w.run();
  ASSERT_EQ(o2.handled().size(), 1u);

  action::HandledRecord forged = o2.handled().back();
  forged.resolved = decl.tree().find("emergency_engine_loss_exception");
  o2.debug_inject_handled(forged);
  w.network().set_node_up(o2.runtime().node(), false);

  OracleOptions options;
  options.deadline = w.simulator().now();
  const OracleReport report = check_invariants(w, options);
  EXPECT_FALSE(any_violation_contains(report, "resolution disagreement"))
      << report.summary();
  EXPECT_FALSE(any_violation_contains(report, "stuck in action"));
}

// Conservation: per message kind, sent + duplicated == delivered + dropped.
// Bumping a sent counter without a matching delivery breaks exactly one
// kind's books.
TEST(Oracle, DetectsConservationBreak) {
  World w;
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  const auto& decl = w.actions().declare("A1", engine_tree());
  const auto& a1 = w.actions().create_instance(decl, {o1.id(), o2.id()});
  ASSERT_TRUE(o1.enter(a1.instance, recovered_config(decl.tree())));
  ASSERT_TRUE(o2.enter(a1.instance, recovered_config(decl.tree())));
  w.at(1000, [&] { o1.raise("left_engine_exception"); });
  w.run();

  OracleOptions options;
  options.deadline = w.simulator().now();
  ASSERT_TRUE(check_invariants(w, options).ok());

  // Phantom send: one Exception packet the network never accounted for.
  w.metrics().counters().add(
      net::kind_counters(net::MsgKind::kException).sent);
  const OracleReport report = check_invariants(w, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_violation_contains(report, "conservation broken"))
      << report.summary();
  EXPECT_TRUE(any_violation_contains(report, "Exception"));
  EXPECT_EQ(report.violations.size(), 1u) << report.summary();
}

// Transactional leaks: a transaction that acquired locks and wrote but
// never committed leaves a held lock, an open undo log and a dangling
// client transaction — three distinct violations.
TEST(Oracle, DetectsTxnLockUndoAndClientLeaks) {
  World w;
  txn::AtomicObjectHost host;
  txn::TxnClient client;
  w.attach(host, "host1", w.add_node());
  w.attach(client, "client1", w.add_node());
  host.put_initial("a", 100);

  const TxnId txn = client.begin();
  w.at(0, [&] {
    client.write(txn, host.id(), "a", 111,
                 [](Status s) { ASSERT_TRUE(s.is_ok()); });
  });
  w.run();  // write applied under the txn; commit never issued
  ASSERT_GT(host.total_locks_held(), 0u);

  OracleOptions options;
  options.deadline = w.simulator().now();
  options.hosts.push_back(&host);
  options.clients.push_back(&client);
  const OracleReport report = check_invariants(w, options);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_violation_contains(report, "leaked")) << report.summary();
  EXPECT_TRUE(any_violation_contains(report, "open undo log"));
  EXPECT_TRUE(any_violation_contains(report, "dangling transaction"));

  // Unregistered hosts are invisible to the oracle — leaks are only
  // audited where the caller asked for them.
  const OracleReport unaudited = check_invariants(w, {});
  EXPECT_FALSE(any_violation_contains(unaudited, "leaked"));
}

}  // namespace
}  // namespace caa::fault
