// Campaign runner: deterministic seed derivation, thread-pool basics, and
// the core promise — merged results are bit-identical for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "run/campaign.h"
#include "run/thread_pool.h"
#include "scenario/scenarios.h"

#ifndef CAA_TEST_DATA_DIR
#error "CAA_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace caa {
namespace {

TEST(DeriveSeed, DeterministicAndDistinct) {
  EXPECT_EQ(run::derive_seed(42, 0), run::derive_seed(42, 0));
  EXPECT_EQ(run::derive_seed(42, 7), run::derive_seed(42, 7));

  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    seen.insert(run::derive_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 1000u) << "seed collision within one campaign";

  // Different campaign seeds give different streams.
  EXPECT_NE(run::derive_seed(42, 0), run::derive_seed(43, 0));
  // Index 0 must not collapse to a pure function of the campaign seed
  // stepping by one (neighbouring campaigns stay decorrelated).
  EXPECT_NE(run::derive_seed(42, 1), run::derive_seed(43, 0));
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  std::atomic<int> counter{0};
  run::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);

  // The pool stays usable after wait_idle.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    run::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // no wait_idle: the destructor must still run everything
  EXPECT_EQ(counter.load(), 50);
}

/// The standard campaign the determinism tests run: a flat-family sweep
/// with derived per-world seeds plus one observed Example-1 world whose
/// Chrome trace rides along as the artifact.
run::Campaign make_campaign(unsigned threads) {
  run::Campaign campaign({.seed = 42, .threads = threads});
  for (const int n : {4, 8, 16}) {
    for (int k = 0; k < 3; ++k) {
      campaign.add("flat_n" + std::to_string(n) + "#" + std::to_string(k),
                   [n](const run::WorldContext& ctx) {
                     scenario::FlatOptions options;
                     options.participants = n;
                     options.raisers = 2;
                     options.world.seed = ctx.seed;
                     scenario::FlatScenario s(options);
                     return run::measure("flat", s.world(), [&s] {
                       return s.world().run();
                     });
                   });
    }
  }
  campaign.add("example1", [](const run::WorldContext&) {
    scenario::Example1Options options;
    options.world.observe = true;
    scenario::Example1Scenario s(options);
    run::WorldResult r =
        run::measure("example1", s.world(), [&s] { return s.world().run(); });
    r.artifact = s.world().chrome_trace();
    return r;
  });
  return campaign;
}

TEST(Campaign, MergeIsThreadCountInvariant) {
  run::CampaignResult serial = make_campaign(1).run();
  run::CampaignResult parallel = make_campaign(8).run();
  ASSERT_TRUE(serial.all_ok()) << serial.first_error();
  ASSERT_TRUE(parallel.all_ok()) << parallel.first_error();
  EXPECT_EQ(serial.threads_used, 1u);

  EXPECT_EQ(serial.merged_checksum, parallel.merged_checksum);
  EXPECT_EQ(serial.merged_metrics.to_string(),
            parallel.merged_metrics.to_string());
  EXPECT_EQ(serial.total_events, parallel.total_events);
  EXPECT_EQ(serial.total_messages, parallel.total_messages);
  EXPECT_EQ(serial.merged_values, parallel.merged_values);

  ASSERT_EQ(serial.worlds.size(), parallel.worlds.size());
  for (std::size_t i = 0; i < serial.worlds.size(); ++i) {
    const run::WorldResult& a = serial.worlds[i];
    const run::WorldResult& b = parallel.worlds[i];
    EXPECT_EQ(a.name, b.name) << "world " << i;
    EXPECT_EQ(a.checksum, b.checksum) << "world " << a.name;
    EXPECT_EQ(a.events, b.events) << "world " << a.name;
    EXPECT_EQ(a.sim_time, b.sim_time) << "world " << a.name;
    EXPECT_EQ(a.metrics.to_string(), b.metrics.to_string())
        << "world " << a.name;
    EXPECT_EQ(a.artifact, b.artifact) << "world " << a.name;
  }
}

TEST(Campaign, RepeatedRunsAreIdentical) {
  const run::CampaignResult first = make_campaign(8).run();
  const run::CampaignResult second = make_campaign(8).run();
  EXPECT_EQ(first.merged_checksum, second.merged_checksum);
  EXPECT_EQ(first.total_events, second.total_events);
}

TEST(Campaign, DistinctWorldSeedsGiveDistinctFingerprints) {
  // Sanity that the sweep is not degenerate: with per-world derived seeds
  // and lossy links, sibling worlds actually differ.
  run::Campaign campaign({.seed = 42, .threads = 2});
  for (int k = 0; k < 4; ++k) {
    campaign.add("lossy#" + std::to_string(k),
                 [](const run::WorldContext& ctx) {
                   scenario::FlatOptions options;
                   options.participants = 6;
                   options.world.seed = ctx.seed;
                   options.world.link = net::LinkParams::lossy(0.2);
                   options.world.reliable_transport = true;
                   scenario::FlatScenario s(options);
                   return run::measure("lossy", s.world(), [&s] {
                     return s.world().run();
                   });
                 });
  }
  const run::CampaignResult r = campaign.run();
  ASSERT_TRUE(r.all_ok()) << r.first_error();
  std::set<std::uint64_t> checksums;
  for (const run::WorldResult& w : r.worlds) checksums.insert(w.checksum);
  EXPECT_GT(checksums.size(), 1u)
      << "derived seeds produced identical lossy worlds";
}

TEST(Campaign, Example1TraceMatchesGolden) {
  // The campaign-run Example-1 artifact must be the exact bytes obs_test
  // pins: running a world under the pool cannot perturb its trace.
  const std::string golden_path =
      std::string(CAA_TEST_DATA_DIR) + "/golden/example1_chrome_trace.json";
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::ostringstream golden;
  golden << in.rdbuf();

  const run::CampaignResult r = make_campaign(8).run();
  ASSERT_TRUE(r.all_ok()) << r.first_error();
  const run::WorldResult& example1 = r.worlds.back();
  ASSERT_EQ(example1.name, "example1");
  EXPECT_EQ(example1.artifact, golden.str());
}

TEST(Campaign, FailuresAreReported) {
  run::Campaign campaign({.seed = 1, .threads = 2});
  campaign.add("ok", [](const run::WorldContext&) {
    scenario::FlatScenario s({});
    return run::measure("ok", s.world(), [&s] { return s.world().run(); });
  });
  campaign.add("boom", [](const run::WorldContext&) -> run::WorldResult {
    throw std::runtime_error("injected failure");
  });
  const run::CampaignResult r = campaign.run();
  EXPECT_FALSE(r.all_ok());
  EXPECT_EQ(r.failed, 1u);
  // The failure line carries everything needed to replay the world: name,
  // index, and the derived seed the job received.
  char expected[128];
  std::snprintf(expected, sizeof expected,
                "boom (world 1, seed 0x%016llx): injected failure",
                static_cast<unsigned long long>(run::derive_seed(1, 1)));
  EXPECT_EQ(r.first_error(), expected);
  EXPECT_EQ(r.failure_report(), expected);
  ASSERT_EQ(r.worlds.size(), 2u);
  EXPECT_TRUE(r.worlds[0].ok);
  EXPECT_FALSE(r.worlds[1].ok);
  EXPECT_EQ(r.worlds[1].index, 1u);
  EXPECT_EQ(r.worlds[1].seed, run::derive_seed(1, 1));
  EXPECT_TRUE(r.worlds[1].recorder_dump_path.empty());  // no dump_dir set
  // The healthy world still contributed to the merge.
  EXPECT_GT(r.total_events, 0);
}

TEST(Campaign, HistogramMergeIsThreadCountInvariant) {
  // The percentile rows the bench emits come from the merged histogram
  // snapshot; they must be identical for any worker count.
  const run::CampaignResult serial = make_campaign(1).run();
  const run::CampaignResult parallel = make_campaign(8).run();
  ASSERT_TRUE(serial.all_ok()) << serial.first_error();
  ASSERT_TRUE(parallel.all_ok()) << parallel.first_error();

  const auto a = serial.merged_metrics.histograms.find("resolve.latency");
  const auto b = parallel.merged_metrics.histograms.find("resolve.latency");
  ASSERT_NE(a, serial.merged_metrics.histograms.end());
  ASSERT_NE(b, parallel.merged_metrics.histograms.end());
  // 9 flat worlds x 2 raisers + example1's 2 raisers = 20 samples.
  EXPECT_EQ(a->second.count, 20);
  EXPECT_EQ(a->second.count, b->second.count);
  EXPECT_EQ(a->second.sum, b->second.sum);
  EXPECT_EQ(a->second.min, b->second.min);
  EXPECT_EQ(a->second.max, b->second.max);
  EXPECT_EQ(a->second.buckets, b->second.buckets);
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(a->second.quantile_bound(q), b->second.quantile_bound(q)) << q;
  }
  // Same invariance for every histogram in the merge (delivery delay etc.).
  ASSERT_EQ(serial.merged_metrics.histograms.size(),
            parallel.merged_metrics.histograms.size());
  for (const auto& [name, snap] : serial.merged_metrics.histograms) {
    const auto it = parallel.merged_metrics.histograms.find(name);
    ASSERT_NE(it, parallel.merged_metrics.histograms.end()) << name;
    EXPECT_EQ(snap.count, it->second.count) << name;
    EXPECT_EQ(snap.buckets, it->second.buckets) << name;
  }
}

TEST(Campaign, FailedWorldWritesRecorderDump) {
  const std::string dump_dir = testing::TempDir();
  run::Campaign campaign({.seed = 7, .threads = 2, .dump_dir = dump_dir});
  campaign.add("healthy", [](const run::WorldContext& ctx) {
    scenario::FlatOptions options;
    options.world.seed = ctx.seed;
    scenario::FlatScenario s(options);
    return run::measure("healthy", s.world(), [&s] {
      return s.world().run();
    });
  });
  campaign.add("doomed", [](const run::WorldContext& ctx) -> run::WorldResult {
    scenario::FlatOptions options;
    options.world.seed = ctx.seed;
    scenario::FlatScenario s(options);
    s.run();
    // Simulate an invariant tripping after the run: the in-flight world's
    // black box must land on disk as the stack unwinds.
    throw std::runtime_error("invariant tripped");
  });
  const run::CampaignResult r = campaign.run();
  EXPECT_FALSE(r.all_ok());
  ASSERT_EQ(r.worlds.size(), 2u);
  const run::WorldResult& doomed = r.worlds[1];
  EXPECT_FALSE(doomed.ok);
  ASSERT_FALSE(doomed.recorder_dump_path.empty())
      << "failed world produced no flight-recorder dump";
  EXPECT_NE(r.first_error().find("recorder dump: "), std::string::npos);
  EXPECT_NE(r.first_error().find(doomed.recorder_dump_path),
            std::string::npos);

  // The dump on disk decodes and identifies the failed world.
  const Result<obs::FlightDump> dump =
      obs::FlightRecorder::read_dump(doomed.recorder_dump_path);
  ASSERT_TRUE(dump.is_ok()) << dump.status();
  EXPECT_EQ(dump.value().seed, run::derive_seed(7, 1));
  EXPECT_EQ(dump.value().world_index, 1u);
  EXPECT_FALSE(dump.value().records.empty());
  std::remove(doomed.recorder_dump_path.c_str());

  // The healthy world neither dumped nor leaked crash-arm state.
  EXPECT_TRUE(r.worlds[0].ok);
  EXPECT_TRUE(r.worlds[0].recorder_dump_path.empty());
  EXPECT_FALSE(obs::FlightRecorder::crash_dump_armed());
}

TEST(Campaign, ThreadsZeroMeansHardwareConcurrency) {
  run::Campaign campaign({.seed = 42, .threads = 0});
  for (int k = 0; k < 2; ++k) {
    campaign.add("w" + std::to_string(k), [](const run::WorldContext&) {
      scenario::FlatScenario s({});
      return run::measure("w", s.world(), [&s] { return s.world().run(); });
    });
  }
  const run::CampaignResult r = campaign.run();
  ASSERT_TRUE(r.all_ok());
  EXPECT_GE(r.threads_used, 1u);
  EXPECT_LE(r.threads_used, 2u);  // clamped to the job count
}

}  // namespace
}  // namespace caa
