// Unit tests of the pure §4.2 resolution state machine, driven directly
// through its hooks — no network, no simulator. A tiny in-memory bus
// shuttles encoded messages between engines in FIFO order.
#include <gtest/gtest.h>

#include <deque>

#include "resolve/resolver_core.h"

namespace caa::resolve {
namespace {

using State = ResolverCore::State;

/// Synchronous FIFO bus between N engines (ids 0..N-1).
struct Bus {
  struct Wire {
    ObjectId from;
    ObjectId to;  // invalid => multicast to all but from
    net::MsgKind kind;
    net::Bytes payload;
  };

  std::vector<std::unique_ptr<ResolverCore>> engines;
  std::deque<Wire> queue;
  std::vector<ExceptionId> handled;      // resolved per engine (by index)
  std::vector<int> aborted;              // abort_nested calls per engine
  ExceptionId abort_signal;              // what abortion handlers signal

  explicit Bus(std::size_t n, const ex::ExceptionTree* tree,
               ActionInstanceId scope = ActionInstanceId(1),
               std::uint32_t round = 0) {
    handled.assign(n, ExceptionId::invalid());
    aborted.assign(n, 0);
    std::vector<ObjectId> members;
    for (std::size_t i = 0; i < n; ++i) members.push_back(ObjectId(i));
    for (std::size_t i = 0; i < n; ++i) {
      ResolverCore::Hooks hooks;
      const ObjectId self(i);
      hooks.multicast = [this, self](net::MsgKind kind, net::Bytes payload) {
        queue.push_back(Wire{self, ObjectId::invalid(), kind,
                             std::move(payload)});
      };
      hooks.send = [this, self](ObjectId to, net::MsgKind kind,
                                net::Bytes payload) {
        queue.push_back(Wire{self, to, kind, std::move(payload)});
      };
      hooks.abort_nested = [this, i](std::function<void(ExceptionId)> done) {
        ++aborted[i];
        done(abort_signal);
      };
      hooks.start_handler = [this, i](ExceptionId resolved, ObjectId) {
        handled[i] = resolved;
      };
      engines.push_back(std::make_unique<ResolverCore>(
          self, members, tree, scope, round, std::move(hooks)));
    }
  }

  void deliver_one() {
    Wire w = std::move(queue.front());
    queue.pop_front();
    auto dispatch = [&](ResolverCore& engine) {
      switch (w.kind) {
        case net::MsgKind::kException:
          engine.on_exception(decode_exception(w.payload).value());
          break;
        case net::MsgKind::kHaveNested:
          engine.on_have_nested(decode_have_nested(w.payload).value());
          break;
        case net::MsgKind::kNestedCompleted:
          engine.on_nested_completed(
              decode_nested_completed(w.payload).value());
          break;
        case net::MsgKind::kAck:
          engine.on_ack(decode_ack(w.payload).value());
          break;
        case net::MsgKind::kCommit:
          engine.on_commit(decode_commit(w.payload).value());
          break;
        default:
          FAIL() << "unexpected kind";
      }
    };
    if (w.to.valid()) {
      dispatch(*engines[w.to.value()]);
    } else {
      for (std::size_t i = 0; i < engines.size(); ++i) {
        if (ObjectId(i) != w.from) dispatch(*engines[i]);
      }
    }
  }

  void run() {
    while (!queue.empty()) deliver_one();
  }
};

TEST(ResolverCore, SingleMemberResolvesImmediately) {
  ex::ExceptionTree tree = ex::shapes::star(2);
  Bus bus(1, &tree);
  bus.engines[0]->raise(tree.find("s1"));
  EXPECT_EQ(bus.engines[0]->state(), State::kHandling);
  EXPECT_EQ(bus.handled[0], tree.find("s1"));
  // The multicast hooks fired but there are no peers: delivering the queued
  // wires reaches nobody and changes nothing.
  bus.run();
  EXPECT_EQ(bus.engines[0]->state(), State::kHandling);
}

TEST(ResolverCore, TwoMembersSingleRaise) {
  ex::ExceptionTree tree = ex::shapes::star(2);
  Bus bus(2, &tree);
  bus.engines[0]->raise(tree.find("s1"));
  EXPECT_EQ(bus.engines[0]->state(), State::kExceptional);
  bus.run();
  EXPECT_EQ(bus.handled[0], tree.find("s1"));
  EXPECT_EQ(bus.handled[1], tree.find("s1"));
  EXPECT_EQ(bus.engines[1]->state(), State::kHandling);
}

TEST(ResolverCore, StateTransitionsFollowThePaper) {
  ex::ExceptionTree tree = ex::shapes::star(2);
  Bus bus(2, &tree);
  EXPECT_EQ(bus.engines[0]->state(), State::kNormal);
  EXPECT_EQ(bus.engines[1]->state(), State::kNormal);
  bus.engines[0]->raise(tree.find("s1"));
  // Deliver the Exception to engine 1: N -> S, and it ACKs.
  bus.deliver_one();
  EXPECT_EQ(bus.engines[1]->state(), State::kSuspended);
  // Deliver the ACK to engine 0: X -> R, and being the only raiser it is
  // the max raiser: it commits and starts handling.
  bus.deliver_one();
  EXPECT_EQ(bus.engines[0]->state(), State::kHandling);
}

TEST(ResolverCore, ConcurrentRaisesResolveToLca) {
  ex::ExceptionTree tree;
  const auto parent = tree.declare("engine_loss");
  const auto left = tree.declare("left", parent);
  const auto right = tree.declare("right", parent);
  tree.freeze();

  Bus bus(3, &tree);
  bus.engines[0]->raise(left);
  bus.engines[1]->raise(right);
  bus.run();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(bus.handled[i], parent) << "engine " << i;
  }
}

TEST(ResolverCore, BiggestRaiserCommits) {
  ex::ExceptionTree tree = ex::shapes::star(3);
  Bus bus(3, &tree);
  bus.engines[0]->raise(tree.find("s1"));
  bus.engines[2]->raise(tree.find("s3"));
  // Count commits: exactly one Commit multicast must appear, from engine 2.
  int commits_from_2 = 0, commits_other = 0;
  while (!bus.queue.empty()) {
    if (bus.queue.front().kind == net::MsgKind::kCommit) {
      if (bus.queue.front().from == ObjectId(2)) {
        ++commits_from_2;
      } else {
        ++commits_other;
      }
    }
    bus.deliver_one();
  }
  EXPECT_EQ(commits_from_2, 1);
  EXPECT_EQ(commits_other, 0);
}

TEST(ResolverCore, NestedTriggerAbortsAndSignals) {
  ex::ExceptionTree tree = ex::shapes::star(3);
  Bus bus(2, &tree);
  bus.abort_signal = tree.find("s2");
  // Engine 1 is (conceptually) inside a nested action; engine 0 raises.
  bus.engines[0]->raise(tree.find("s1"));
  // Route the Exception as a *trigger* to engine 1.
  Bus::Wire w = std::move(bus.queue.front());
  bus.queue.pop_front();
  ASSERT_EQ(w.kind, net::MsgKind::kException);
  bus.engines[1]->on_trigger_while_nested(decode_exception(w.payload).value());
  EXPECT_EQ(bus.aborted[1], 1);
  // Engine 1 signalled s2 from its abortion handlers => Exceptional.
  EXPECT_EQ(bus.engines[1]->state(), State::kExceptional);
  bus.run();
  // Raisers are {0 (s1), 1 (s2)}; max is 1; the resolution covers both.
  EXPECT_EQ(bus.handled[0], tree.root());
  EXPECT_EQ(bus.handled[1], tree.root());
}

TEST(ResolverCore, NestedTriggerWithoutSignalSuspends) {
  ex::ExceptionTree tree = ex::shapes::star(2);
  Bus bus(2, &tree);
  bus.engines[0]->raise(tree.find("s1"));
  Bus::Wire w = std::move(bus.queue.front());
  bus.queue.pop_front();
  bus.engines[1]->on_trigger_while_nested(decode_exception(w.payload).value());
  EXPECT_EQ(bus.engines[1]->state(), State::kSuspended);
  bus.run();
  EXPECT_EQ(bus.handled[0], tree.find("s1"));
  EXPECT_EQ(bus.handled[1], tree.find("s1"));
}

TEST(ResolverCore, HaveNestedTriggerAlsoAborts) {
  ex::ExceptionTree tree = ex::shapes::star(2);
  Bus bus(2, &tree);
  // Simulate engine 1 receiving a HaveNested as the first thing it learns.
  const HaveNestedMsg hn{ActionInstanceId(1), 0, ObjectId(0)};
  bus.engines[1]->on_trigger_while_nested(hn);
  EXPECT_EQ(bus.aborted[1], 1);
  EXPECT_EQ(bus.engines[1]->state(), State::kSuspended);
  // It must have multicast HaveNested and NestedCompleted.
  ASSERT_EQ(bus.queue.size(), 2u);
  EXPECT_EQ(bus.queue[0].kind, net::MsgKind::kHaveNested);
  EXPECT_EQ(bus.queue[1].kind, net::MsgKind::kNestedCompleted);
}

TEST(ResolverCore, ResolverWaitsForNestedCompletion) {
  ex::ExceptionTree tree = ex::shapes::star(3);
  Bus bus(2, &tree);
  bus.engines[0]->raise(tree.find("s1"));
  // Engine 1 announces nested activity (HaveNested) but has not completed.
  bus.engines[0]->on_have_nested(
      HaveNestedMsg{ActionInstanceId(1), 0, ObjectId(1)});
  // Even with the ACK, engine 0 must not reach Ready while LO has a
  // pending entry.
  bus.engines[0]->on_ack(AckMsg{ActionInstanceId(1), 0, ObjectId(1)});
  EXPECT_EQ(bus.engines[0]->state(), State::kExceptional);
  bus.engines[0]->on_nested_completed(
      NestedCompletedMsg{ActionInstanceId(1), 0, ObjectId(1),
                         ExceptionId::invalid()});
  // Now: all ACKs + all nested completed => Ready => max raiser => commit.
  EXPECT_EQ(bus.engines[0]->state(), State::kHandling);
  EXPECT_EQ(bus.handled[0], tree.find("s1"));
}

TEST(ResolverCore, CommitHeldUntilReady) {
  ex::ExceptionTree tree = ex::shapes::star(3);
  Bus bus(3, &tree);
  // Engines 0 and 2 raise; engine 0 receives the commit from 2 before its
  // own ACKs are complete: it must hold the commit until Ready.
  bus.engines[0]->raise(tree.find("s1"));
  bus.engines[0]->on_exception(
      ExceptionMsg{ActionInstanceId(1), 0, ObjectId(2), tree.find("s3")});
  bus.engines[0]->on_commit(
      CommitMsg{ActionInstanceId(1), 0, ObjectId(2), tree.root()});
  EXPECT_EQ(bus.engines[0]->state(), State::kExceptional);  // held
  bus.engines[0]->on_ack(AckMsg{ActionInstanceId(1), 0, ObjectId(1)});
  EXPECT_EQ(bus.engines[0]->state(), State::kExceptional);  // one ACK missing
  bus.engines[0]->on_ack(AckMsg{ActionInstanceId(1), 0, ObjectId(2)});
  EXPECT_EQ(bus.engines[0]->state(), State::kHandling);
  EXPECT_EQ(bus.handled[0], tree.root());
}

TEST(ResolverCore, MessagesRoundTripThroughWireFormat) {
  const ExceptionMsg e{ActionInstanceId(7), 3, ObjectId(2), ExceptionId(5)};
  const auto decoded = decode_exception(encode(e));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().scope, e.scope);
  EXPECT_EQ(decoded.value().round, 3u);
  EXPECT_EQ(decoded.value().raiser, e.raiser);
  EXPECT_EQ(decoded.value().exception, e.exception);

  const NestedCompletedMsg nc{ActionInstanceId(9), 1, ObjectId(4),
                              ExceptionId::invalid()};
  const auto nc2 = decode_nested_completed(encode(nc));
  ASSERT_TRUE(nc2.is_ok());
  EXPECT_FALSE(nc2.value().signalled.valid());

  const auto sr = peek_scope_round(encode(e));
  ASSERT_TRUE(sr.is_ok());
  EXPECT_EQ(sr.value().scope, ActionInstanceId(7));
  EXPECT_EQ(sr.value().round, 3u);
}

TEST(ResolverCore, MalformedMessagesRejected) {
  net::Bytes junk{std::byte{1}, std::byte{2}};
  EXPECT_FALSE(decode_exception(junk).is_ok());
  EXPECT_FALSE(decode_commit(junk).is_ok());
  EXPECT_FALSE(peek_scope_round(junk).is_ok());
}

}  // namespace
}  // namespace caa::resolve
