// Coordination avoidance: the commutative-exception fast path must skip
// the Exception/ACK exchange entirely on commutative raise sets, fall back
// to the full exchange on conflicts, crashes and busy members, and in every
// case resolve EXACTLY what the unoptimized algorithm resolves on the same
// seed (gated on scenario::resolved_checksum, not on timing).
#include <gtest/gtest.h>

#include "fault/chaos.h"
#include "scenario/scenarios.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

scenario::FlatOptions flat_options(int n, int p, int q, bool avoid) {
  scenario::FlatOptions options;
  options.participants = n;
  options.raisers = p;
  options.nested = q;
  options.world.resolve_avoidance = avoid;
  return options;
}

TEST(ResolveAvoidance, CommutativeAllRaiseSkipsExchangeEntirely) {
  // §4.4 all-raise on a star tree: every cover is the root, so the whole
  // raise set commutes. The census must resolve it with ZERO Exception and
  // ZERO ACK messages — and resolve the same exception the full exchange
  // resolves.
  for (const auto& [n, p] : {std::pair{3, 3}, std::pair{6, 6},
                             std::pair{8, 8}, std::pair{6, 2}}) {
    scenario::FlatScenario fast(flat_options(n, p, 0, true));
    const scenario::RunStats stats = fast.run();
    EXPECT_EQ(stats.exceptions, 0) << "N=" << n << " P=" << p;
    EXPECT_EQ(stats.acks, 0) << "N=" << n << " P=" << p;
    EXPECT_EQ(stats.have_nested, 0) << "N=" << n << " P=" << p;
    EXPECT_TRUE(stats.all_handled) << "N=" << n << " P=" << p;
    EXPECT_GE(fast.world().metrics().value("resolve.fast_commits"), 1);
    EXPECT_EQ(fast.world().metrics().value("resolve.fallbacks"), 0);

    scenario::FlatScenario full(flat_options(n, p, 0, false));
    const scenario::RunStats baseline = full.run();
    EXPECT_GT(baseline.exceptions, 0);
    EXPECT_EQ(scenario::resolved_checksum(fast.objects()),
              scenario::resolved_checksum(full.objects()))
        << "N=" << n << " P=" << p;
  }
}

TEST(ResolveAvoidance, AllRaiseCostsAtMostTwoNMessages) {
  // Flat-mode fast-path cost of the §4.4 all-raise: P-1 reports to the
  // leader plus N-1 commit multicasts — 2N-2 <= 2N, versus the full
  // exchange's (N-1)(2P+1).
  const int n = 8;
  scenario::FlatScenario fast(flat_options(n, n, 0, true));
  const scenario::RunStats stats = fast.run();
  EXPECT_LE(stats.messages, 2 * n);
  EXPECT_EQ(stats.fast_covers + stats.commits, stats.messages);
}

TEST(ResolveAvoidance, SingleRaiserUsesCensusProbes) {
  // One raiser among idle members: the census cannot complete on reports
  // alone, so the leader probes and the members promise kNoRaise.
  scenario::FlatScenario fast(flat_options(5, 1, 0, true));
  const scenario::RunStats stats = fast.run();
  EXPECT_EQ(stats.exceptions, 0);
  EXPECT_EQ(stats.acks, 0);
  EXPECT_TRUE(stats.all_handled);
  EXPECT_GE(fast.world().metrics().value("resolve.fast_probes"), 1);
  EXPECT_GE(fast.world().metrics().value("resolve.fast_commits"), 1);

  scenario::FlatScenario full(flat_options(5, 1, 0, false));
  full.run();
  EXPECT_EQ(scenario::resolved_checksum(fast.objects()),
            scenario::resolved_checksum(full.objects()));
}

TEST(ResolveAvoidance, BusyNestedMemberForcesFallback) {
  // Members sitting in nested actions answer the probe with kBusy: the
  // fast round must fall back to the full exchange and still resolve the
  // exact same exceptions (the nested members report HaveNested as ever).
  scenario::FlatScenario fast(flat_options(6, 2, 2, true));
  const scenario::RunStats stats = fast.run();
  EXPECT_TRUE(stats.all_handled);
  EXPECT_GE(fast.world().metrics().value("resolve.fallbacks"), 1);
  EXPECT_GT(stats.exceptions, 0);  // the replayed full exchange
  EXPECT_GT(stats.have_nested, 0);

  scenario::FlatScenario full(flat_options(6, 2, 2, false));
  full.run();
  EXPECT_EQ(scenario::resolved_checksum(fast.objects()),
            scenario::resolved_checksum(full.objects()));
}

// ---------------------------------------------------------------------------
// Hand-built worlds: conflicting covers, disjoint sibling scopes, crashes.

/// The mixed tree: ea/eb commute under "cover"; "solo" is its own cover;
/// "deep" -> "mid" -> "leaf" makes deep non-universal (raising deep itself
/// can never take the fast path).
ex::ExceptionTree mixed_tree() {
  ex::ExceptionTree tree;
  const auto cover = tree.declare("cover");
  tree.declare("ea", cover);
  tree.declare("eb", cover);
  tree.declare("solo");
  const auto deep = tree.declare("deep");
  const auto mid = tree.declare("mid", deep);
  tree.declare("leaf", mid);
  tree.freeze();
  return tree;
}

struct AvoidWorld {
  explicit AvoidWorld(bool avoid, int n = 4) {
    WorldConfig config;
    config.resolve_avoidance = avoid;
    world = std::make_unique<World>(config);
    std::vector<ObjectId> ids;
    for (int i = 0; i < n; ++i) {
      objects.push_back(
          &world->add_participant("O" + std::to_string(i + 1)));
      ids.push_back(objects.back()->id());
    }
    decl = &world->actions().declare("A", mixed_tree());
    inst = &world->actions().create_instance(*decl, ids);
    for (auto* o : objects) {
      EXPECT_TRUE(o->enter(
          inst->instance,
          EnterConfig::with(uniform_handlers(
              decl->tree(), ex::HandlerResult::recovered(100)))));
    }
  }

  /// Crashes object `victim` the way a membership service would: node
  /// down, survivors notified.
  void crash(int victim, sim::Time at) {
    world->at(at, [this, victim] {
      world->network().set_node_up(
          world->directory().address_of(objects[victim]->id()).node, false);
      for (int i = 0; i < static_cast<int>(objects.size()); ++i) {
        if (i == victim) continue;
        objects[i]->notify_peer_crashed(objects[victim]->id());
      }
    });
  }

  std::unique_ptr<World> world;
  std::vector<Participant*> objects;
  const action::ActionDecl* decl = nullptr;
  const action::InstanceInfo* inst = nullptr;
};

TEST(ResolveAvoidance, ConflictingCoversFallBackWithIdenticalResolution) {
  // ea's cover is "cover", solo's cover is itself: both raises are locally
  // fast-eligible, but the census sees the mismatch and falls back. The
  // replayed full exchange must resolve lca(ea, solo) = the root, exactly
  // as with avoidance off.
  auto run = [](bool avoid) {
    AvoidWorld w(avoid);
    w.world->at(1000, [&w] { w.objects[1]->raise("ea"); });
    w.world->at(1000, [&w] { w.objects[2]->raise("solo"); });
    w.world->run();
    return w;
  };
  AvoidWorld fast = run(true);
  AvoidWorld full = run(false);
  EXPECT_GE(fast.world->metrics().value("resolve.fallbacks"), 1);
  EXPECT_EQ(fast.world->metrics().value("resolve.fast_commits"), 0);
  for (auto* o : fast.objects) {
    ASSERT_EQ(o->handled().size(), 1u);
    EXPECT_EQ(o->handled()[0].resolved, fast.decl->tree().root());
  }
  EXPECT_EQ(scenario::resolved_checksum(fast.objects),
            scenario::resolved_checksum(full.objects));
}

TEST(ResolveAvoidance, NonUniversalRaiseTakesSlowPathAndTriggersFallback) {
  // "deep" has no universal cover, so its raiser multicasts Exception the
  // classic way; the concurrent ea fast round hears the slow traffic and
  // falls back before the census can commit.
  auto run = [](bool avoid) {
    AvoidWorld w(avoid);
    w.world->at(1000, [&w] { w.objects[1]->raise("ea"); });
    w.world->at(1000, [&w] { w.objects[3]->raise("deep"); });
    w.world->run();
    return w;
  };
  AvoidWorld fast = run(true);
  AvoidWorld full = run(false);
  EXPECT_EQ(fast.world->metrics().value("resolve.fast_commits"), 0);
  EXPECT_GT(fast.world->metrics().sent(net::MsgKind::kException), 0);
  for (auto* o : fast.objects) {
    ASSERT_EQ(o->handled().size(), 1u);
  }
  EXPECT_EQ(scenario::resolved_checksum(fast.objects),
            scenario::resolved_checksum(full.objects));
}

TEST(ResolveAvoidance, CrashDuringFastRoundFallsBackToExclusionPath) {
  // A member crashes while the census is open (reports in flight, probe
  // not yet fired). Every survivor aborts the fast round on the crash
  // notification; the raiser replays into the engine and the survivors
  // resolve through the normal exclusion machinery — identically to the
  // avoidance-off world under the same crash.
  for (const int victim : {2, 0}) {  // a follower, then the census leader
    auto run = [victim](bool avoid) {
      AvoidWorld w(avoid);
      w.world->at(1000, [&w] { w.objects[1]->raise("ea"); });
      w.crash(victim, 1050);
      w.world->run();
      return w;
    };
    AvoidWorld fast = run(true);
    AvoidWorld full = run(false);
    EXPECT_EQ(fast.world->metrics().value("resolve.fast_commits"), 0)
        << "victim=" << victim;
    // The raiser replays its suppressed raise on the crash notification.
    // (A *fallbacks* census abort only shows when the census had opened —
    // killing the leader before its first report arrives leaves none.)
    EXPECT_GE(fast.world->metrics().value("resolve.fallback_replays"), 1)
        << "victim=" << victim;
    for (int i = 0; i < static_cast<int>(fast.objects.size()); ++i) {
      if (i == victim) continue;
      EXPECT_EQ(fast.objects[i]->handled().size(), 1u)
          << "victim=" << victim << " object=" << i;
    }
    EXPECT_EQ(scenario::resolved_checksum(fast.objects),
              scenario::resolved_checksum(full.objects))
        << "victim=" << victim;
  }
}

TEST(ResolveAvoidance, DisjointSiblingScopesCommitIndependently) {
  // Two nested sibling actions with disjoint member sets: each runs its
  // own census and commits fast; the raise sets never interact and the
  // world sees zero Exception/ACK traffic in total.
  WorldConfig config;
  config.resolve_avoidance = true;
  World w(config);
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  for (int i = 0; i < 6; ++i) {
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects.back()->id());
  }
  const auto& parent_decl = w.actions().declare("P", ex::shapes::star(1));
  const auto& parent = w.actions().create_instance(parent_decl, ids);
  for (auto* o : objects) {
    ASSERT_TRUE(o->enter(
        parent.instance,
        EnterConfig::with(uniform_handlers(parent_decl.tree(),
                                           ex::HandlerResult::recovered()))));
  }
  const auto& left_decl = w.actions().declare("L", ex::shapes::star(3));
  const auto& right_decl = w.actions().declare("R", ex::shapes::star(3));
  const auto& left = w.actions().create_instance(
      left_decl, {ids[0], ids[1], ids[2]}, parent.instance);
  const auto& right = w.actions().create_instance(
      right_decl, {ids[3], ids[4], ids[5]}, parent.instance);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(objects[i]->enter(
        left.instance,
        EnterConfig::with(uniform_handlers(left_decl.tree(),
                                           ex::HandlerResult::recovered()))));
    ASSERT_TRUE(objects[3 + i]->enter(
        right.instance,
        EnterConfig::with(uniform_handlers(right_decl.tree(),
                                           ex::HandlerResult::recovered()))));
  }
  w.at(1000, [&] { objects[0]->raise("s1"); });
  w.at(1000, [&] { objects[4]->raise("s2"); });
  w.run();

  EXPECT_EQ(w.metrics().sent(net::MsgKind::kException), 0);
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kAck), 0);
  EXPECT_EQ(w.metrics().value("resolve.fast_commits"), 2);
  for (auto* o : objects) {
    EXPECT_EQ(o->handled().size(), 1u);
  }
}

TEST(ResolveAvoidance, PerEntryOverrideKeepsMemberAnswering) {
  // An EnterConfig override turning avoidance OFF only stops that member
  // from *initiating* fast rounds — it still answers probes, so a peer's
  // commutative raise commits fast anyway.
  WorldConfig config;
  config.resolve_avoidance = true;
  World w(config);
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  for (int i = 0; i < 3; ++i) {
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects.back()->id());
  }
  const auto& decl = w.actions().declare("A", ex::shapes::star(3));
  const auto& inst = w.actions().create_instance(decl, ids);
  for (int i = 0; i < 3; ++i) {
    auto builder = EnterConfig::with(
        uniform_handlers(decl.tree(), ex::HandlerResult::recovered()));
    if (i == 2) builder.resolve_avoidance(false);
    ASSERT_TRUE(objects[i]->enter(inst.instance, std::move(builder).build()));
  }
  // The opted-out member raises: classic Exception multicast, which any
  // open census would treat as slow traffic. Run it alone first.
  w.at(1000, [&] { objects[2]->raise("s1"); });
  w.run();
  EXPECT_GT(w.metrics().sent(net::MsgKind::kException), 0);
  EXPECT_EQ(w.metrics().value("resolve.fast_commits"), 0);
  for (auto* o : objects) {
    EXPECT_EQ(o->handled().size(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Chaos smoke: the fast path must survive every fault-mix profile — all
// fallbacks clean, zero oracle violations — at campaign scale.

class AvoidanceChaosSmoke : public ::testing::TestWithParam<fault::FaultMix> {
};

TEST_P(AvoidanceChaosSmoke, RunsCleanWithAvoidanceOn) {
  fault::ChaosOptions options;
  options.seed = 42;
  options.plans = 300;
  options.threads = 0;
  options.mix = GetParam();
  options.avoid = true;
  const fault::ChaosReport report = fault::run_chaos_campaign(options);
  EXPECT_EQ(report.violations, 0u)
      << fault_mix_name(GetParam()) << ": " << report.failure_report();
  // The campaign must actually exercise the fast path, not just survive it.
  const auto& merged = report.campaign.merged_metrics.counters;
  const auto raises = merged.find("resolve.fast_raises");
  ASSERT_NE(raises, merged.end());
  EXPECT_GT(raises->second, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, AvoidanceChaosSmoke,
    ::testing::Values(fault::FaultMix::kMixed, fault::FaultMix::kCrashHeavy,
                      fault::FaultMix::kNetworkOnly,
                      fault::FaultMix::kResolverHunt),
    [](const ::testing::TestParamInfo<fault::FaultMix>& info) {
      std::string name(fault::fault_mix_name(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace caa
