// Observability tests: golden Chrome trace for §4.3 Example 1, byte
// stability across identical runs, trace-JSON well-formedness, per-track
// span nesting, and zero counter drift between observe-on and observe-off
// runs of the same scenario.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "caa/world.h"
#include "scenario/scenarios.h"

#ifndef CAA_TEST_DATA_DIR
#error "CAA_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace caa {
namespace {

/// §4.3 Example 1 via the shared scenario library (the golden trace pins
/// that the library stages it exactly as this test always did): O1 and O2
/// raise sibling exceptions concurrently at t=1000; O2 resolves.
std::unique_ptr<scenario::Example1Scenario> run_example1(bool observe) {
  scenario::Example1Options options;
  options.world.observe = observe;
  auto s = std::make_unique<scenario::Example1Scenario>(options);
  s->run();
  return s;
}

// ---------------------------------------------------------------------------
// A minimal JSON parser, just enough to prove the exported trace is a
// well-formed document (chrome://tracing rejects anything less).

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(ChromeTrace, GoldenExample1) {
  const std::string golden_path =
      std::string(CAA_TEST_DATA_DIR) + "/golden/example1_chrome_trace.json";
  const auto w = run_example1(/*observe=*/true);
  const std::string trace = w->world().chrome_trace();

  if (std::getenv("CAA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << trace;
    out.close();
    GTEST_SKIP() << "golden rewritten: " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " — run once with CAA_UPDATE_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  // Byte-exact: the exporter promises determinism, and any accidental
  // wall-clock or pointer leak into the trace breaks this immediately.
  EXPECT_EQ(trace, buf.str());
}

TEST(ChromeTrace, ByteStableAcrossIdenticalWorlds) {
  const auto w1 = run_example1(true);
  const auto w2 = run_example1(true);
  EXPECT_EQ(w1->world().chrome_trace(), w2->world().chrome_trace());
  EXPECT_FALSE(w1->world().tracer().spans().empty());
}

TEST(ChromeTrace, ExportIsWellFormedJson) {
  const auto w = run_example1(true);
  const std::string trace = w->world().chrome_trace();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;

  // And with every record category present: run Figure 4 too (aborts,
  // nested rounds, barrier supersession).
  scenario::Figure4Options options;
  options.world.observe = true;
  scenario::Figure4Scenario fig4(options);
  fig4.run();
  const std::string trace4 = fig4.world().chrome_trace();
  EXPECT_TRUE(JsonChecker(trace4).valid()) << trace4;
}

TEST(ChromeTrace, SyncSpansNestPerTrack) {
  scenario::Figure4Options options;
  options.world.observe = true;
  scenario::Figure4Scenario fig4(options);
  fig4.run();
  const obs::Tracer& tracer = fig4.world().tracer();
  ASSERT_FALSE(tracer.spans().empty());

  const sim::Time horizon = tracer.last_time();
  std::map<obs::TrackId, std::vector<const obs::Span*>> stacks;
  sim::Time previous_begin = 0;
  for (const obs::Span& span : tracer.spans()) {
    const sim::Time end = span.end >= 0 ? span.end : horizon;
    EXPECT_GE(span.begin, 0);
    EXPECT_GE(end, span.begin) << span.name;
    // Creation order must follow the virtual clock.
    EXPECT_GE(span.begin, previous_begin) << span.name;
    previous_begin = span.begin;
    if (span.async) continue;  // b/e pairs are exempt from stack nesting
    auto& stack = stacks[span.track];
    while (!stack.empty()) {
      const obs::Span* top = stack.back();
      const sim::Time top_end = top->end >= 0 ? top->end : horizon;
      if (top_end > span.begin) break;
      stack.pop_back();
    }
    if (!stack.empty()) {
      const obs::Span* top = stack.back();
      const sim::Time top_end = top->end >= 0 ? top->end : horizon;
      EXPECT_LE(end, top_end)
          << span.name << " escapes enclosing span " << top->name;
    }
    stack.push_back(&span);
  }
}

TEST(Observability, DisabledRecordsNoSpansOrRounds) {
  const auto w = run_example1(/*observe=*/false);
  EXPECT_TRUE(w->world().tracer().spans().empty());
  EXPECT_TRUE(w->world().tracer().instants().empty());
  EXPECT_TRUE(w->world().metrics().observed_actions().empty());
  // The §4.4 headline number still works: counters are unconditional.
  EXPECT_EQ(w->world().metrics().resolution_messages(), 10);
}

TEST(Observability, ZeroCounterDriftExample1) {
  const auto on = run_example1(true);
  const auto off = run_example1(false);
  EXPECT_EQ(on->world().metrics().counters().to_string(),
            off->world().metrics().counters().to_string());
  EXPECT_EQ(on->world().simulator().now(), off->world().simulator().now());
  EXPECT_FALSE(on->world().tracer().spans().empty());
}

TEST(Observability, ZeroCounterDriftFigure4) {
  // The richest built-in scenario: nested rounds, innermost-first aborts,
  // a belated participant and a superseded resolution.
  auto run = [](bool observe) {
    scenario::Figure4Options options;
    options.world.observe = observe;
    scenario::Figure4Scenario s(options);
    s.run();
    return s.world().metrics().counters().to_string();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Observability, SnapshotDiffTracksNewTraffic) {
  const auto w = run_example1(true);
  const obs::MetricsSnapshot before;  // empty baseline
  const obs::MetricsSnapshot after = w->world().metrics().snapshot();
  const obs::MetricsSnapshot diff = after.diff(before);
  EXPECT_EQ(diff.to_string(), after.to_string());
  EXPECT_TRUE(after.diff(after).counters.empty());
}

}  // namespace
}  // namespace caa
