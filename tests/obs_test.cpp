// Observability tests: golden Chrome trace for §4.3 Example 1, byte
// stability across identical runs, trace-JSON well-formedness, per-track
// span nesting, and zero counter drift between observe-on and observe-off
// runs of the same scenario.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

#include "caa/world.h"
#include "scenario/scenarios.h"

#ifndef CAA_TEST_DATA_DIR
#error "CAA_TEST_DATA_DIR must point at the tests/ source directory"
#endif

namespace caa {
namespace {

using action::EnterConfig;
using action::uniform_handlers;

/// §4.3 Example 1, exactly as trace_narrative_test stages it: O1 and O2
/// raise sibling exceptions concurrently at t=1000; O2 resolves.
std::unique_ptr<World> run_example1(bool observe) {
  WorldConfig wc;
  wc.observe = observe;
  auto w = std::make_unique<World>(wc);
  auto& o1 = w->add_participant("O1");
  auto& o2 = w->add_participant("O2");
  auto& o3 = w->add_participant("O3");
  ex::ExceptionTree tree;
  const auto parent = tree.declare("E");
  tree.declare("E1", parent);
  tree.declare("E2", parent);
  const auto& decl = w->actions().declare("A1", std::move(tree));
  const auto& a1 =
      w->actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  for (auto* o : {&o1, &o2, &o3}) {
    EXPECT_TRUE(o->enter(
        a1.instance,
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))));
  }
  w->at(1000, [&o1] { o1.raise("E1"); });
  w->at(1000, [&o2] { o2.raise("E2"); });
  w->run();
  return w;
}

// ---------------------------------------------------------------------------
// A minimal JSON parser, just enough to prove the exported trace is a
// well-formed document (chrome://tracing rejects anything less).

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(ChromeTrace, GoldenExample1) {
  const std::string golden_path =
      std::string(CAA_TEST_DATA_DIR) + "/golden/example1_chrome_trace.json";
  const auto w = run_example1(/*observe=*/true);
  const std::string trace = w->chrome_trace();

  if (std::getenv("CAA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << trace;
    out.close();
    GTEST_SKIP() << "golden rewritten: " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " — run once with CAA_UPDATE_GOLDEN=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  // Byte-exact: the exporter promises determinism, and any accidental
  // wall-clock or pointer leak into the trace breaks this immediately.
  EXPECT_EQ(trace, buf.str());
}

TEST(ChromeTrace, ByteStableAcrossIdenticalWorlds) {
  const auto w1 = run_example1(true);
  const auto w2 = run_example1(true);
  EXPECT_EQ(w1->chrome_trace(), w2->chrome_trace());
  EXPECT_FALSE(w1->tracer().spans().empty());
}

TEST(ChromeTrace, ExportIsWellFormedJson) {
  const auto w = run_example1(true);
  const std::string trace = w->chrome_trace();
  EXPECT_TRUE(JsonChecker(trace).valid()) << trace;

  // And with every record category present: run Figure 4 too (aborts,
  // nested rounds, barrier supersession).
  scenario::Figure4Options options;
  options.world.observe = true;
  scenario::Figure4Scenario fig4(options);
  fig4.run();
  const std::string trace4 = fig4.world().chrome_trace();
  EXPECT_TRUE(JsonChecker(trace4).valid()) << trace4;
}

TEST(ChromeTrace, SyncSpansNestPerTrack) {
  scenario::Figure4Options options;
  options.world.observe = true;
  scenario::Figure4Scenario fig4(options);
  fig4.run();
  const obs::Tracer& tracer = fig4.world().tracer();
  ASSERT_FALSE(tracer.spans().empty());

  const sim::Time horizon = tracer.last_time();
  std::map<obs::TrackId, std::vector<const obs::Span*>> stacks;
  sim::Time previous_begin = 0;
  for (const obs::Span& span : tracer.spans()) {
    const sim::Time end = span.end >= 0 ? span.end : horizon;
    EXPECT_GE(span.begin, 0);
    EXPECT_GE(end, span.begin) << span.name;
    // Creation order must follow the virtual clock.
    EXPECT_GE(span.begin, previous_begin) << span.name;
    previous_begin = span.begin;
    if (span.async) continue;  // b/e pairs are exempt from stack nesting
    auto& stack = stacks[span.track];
    while (!stack.empty()) {
      const obs::Span* top = stack.back();
      const sim::Time top_end = top->end >= 0 ? top->end : horizon;
      if (top_end > span.begin) break;
      stack.pop_back();
    }
    if (!stack.empty()) {
      const obs::Span* top = stack.back();
      const sim::Time top_end = top->end >= 0 ? top->end : horizon;
      EXPECT_LE(end, top_end)
          << span.name << " escapes enclosing span " << top->name;
    }
    stack.push_back(&span);
  }
}

TEST(Observability, DisabledRecordsNoSpansOrRounds) {
  const auto w = run_example1(/*observe=*/false);
  EXPECT_TRUE(w->tracer().spans().empty());
  EXPECT_TRUE(w->tracer().instants().empty());
  EXPECT_TRUE(w->metrics().observed_actions().empty());
  // The §4.4 headline number still works: counters are unconditional.
  EXPECT_EQ(w->metrics().resolution_messages(), 10);
}

TEST(Observability, ZeroCounterDriftExample1) {
  const auto on = run_example1(true);
  const auto off = run_example1(false);
  EXPECT_EQ(on->metrics().counters().to_string(),
            off->metrics().counters().to_string());
  EXPECT_EQ(on->simulator().now(), off->simulator().now());
  EXPECT_FALSE(on->tracer().spans().empty());
}

TEST(Observability, ZeroCounterDriftFigure4) {
  // The richest built-in scenario: nested rounds, innermost-first aborts,
  // a belated participant and a superseded resolution.
  auto run = [](bool observe) {
    scenario::Figure4Options options;
    options.world.observe = observe;
    scenario::Figure4Scenario s(options);
    s.run();
    return s.world().metrics().counters().to_string();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Observability, SnapshotDiffTracksNewTraffic) {
  const auto w = run_example1(true);
  const obs::MetricsSnapshot before;  // empty baseline
  const obs::MetricsSnapshot after = w->metrics().snapshot();
  const obs::MetricsSnapshot diff = after.diff(before);
  EXPECT_EQ(diff.to_string(), after.to_string());
  EXPECT_TRUE(after.diff(after).counters.empty());
}

}  // namespace
}  // namespace caa
