// Unit tests of the object runtime: directory, attach/detach, message
// dispatch, timers, World facade.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "rt/managed_object.h"
#include "rt/runtime.h"

namespace caa::rt {
namespace {

class Echo final : public ManagedObject {
 public:
  void on_message(ObjectId from, net::MsgKind kind,
                  const net::Bytes& payload) override {
    ++received_;
    last_from_ = from;
    if (kind == net::MsgKind::kAppData && echo_) {
      send(from, net::MsgKind::kAppData, payload);
    }
  }
  int received_ = 0;
  ObjectId last_from_;
  bool echo_ = false;
};

TEST(Directory, RegisterAndResolve) {
  Directory d;
  const ObjectId a = d.register_object("alpha", NodeId(0));
  const ObjectId b = d.register_object("beta", NodeId(1));
  EXPECT_NE(a, b);
  EXPECT_EQ(d.address_of(a).node, NodeId(0));
  EXPECT_EQ(d.address_of(b).object, b);
  EXPECT_EQ(d.name_of(a), "alpha");
  EXPECT_EQ(d.find("beta"), b);
  EXPECT_FALSE(d.find("gamma").valid());
  EXPECT_EQ(d.size(), 2u);
}

TEST(Directory, IdsFollowRegistrationOrder) {
  // The §4.1 participant ordering comes from registration order.
  Directory d;
  const ObjectId first = d.register_object("x", NodeId(0));
  const ObjectId second = d.register_object("y", NodeId(0));
  EXPECT_LT(first, second);
}

TEST(Runtime, SendAndDispatchAcrossNodes) {
  World w;
  Echo a, b;
  const NodeId n1 = w.add_node(), n2 = w.add_node();
  w.attach(a, "a", n1);
  w.attach(b, "b", n2);
  b.echo_ = true;

  w.at(0, [&] {
    w.runtime(n1).send(a.id(), b.id(), net::MsgKind::kAppData, net::Bytes{});
  });
  w.run();
  EXPECT_EQ(b.received_, 1);
  EXPECT_EQ(b.last_from_, a.id());
  EXPECT_EQ(a.received_, 1);  // echo came back
  EXPECT_EQ(a.last_from_, b.id());
}

TEST(Runtime, SameNodeObjectsStillUseMessages) {
  World w;
  Echo a, b;
  const NodeId n = w.add_node();
  w.attach(a, "a", n);
  w.attach(b, "b", n);
  w.at(0, [&] {
    w.runtime(n).send(a.id(), b.id(), net::MsgKind::kAppData, net::Bytes{});
  });
  w.run();
  EXPECT_EQ(b.received_, 1);
  // Loopback still went through the network (counted).
  EXPECT_EQ(w.metrics().sent(net::MsgKind::kAppData), 1);
}

TEST(Runtime, DetachedObjectDropsMessages) {
  World w;
  Echo a;
  auto b = std::make_unique<Echo>();
  const NodeId n1 = w.add_node(), n2 = w.add_node();
  w.attach(a, "a", n1);
  w.attach(*b, "b", n2);
  const ObjectId bid = b->id();
  b.reset();  // destructor detaches
  w.at(0, [&] {
    w.runtime(n1).send(a.id(), bid, net::MsgKind::kAppData, net::Bytes{});
  });
  w.run();
  EXPECT_EQ(w.metrics().value("rt.dropped_no_object"), 1);
}

TEST(Runtime, TimersFireAndCancel) {
  World w;
  Echo a;
  w.attach(a, "a", w.add_node());
  int fired = 0;
  EventId keep, cancelled;
  w.at(0, [&] {
    keep = w.simulator().schedule_after(100, [&] { ++fired; });
    cancelled = w.simulator().schedule_after(100, [&] { ++fired; });
    w.simulator().cancel(cancelled);
  });
  w.run();
  EXPECT_EQ(fired, 1);
}

TEST(World, ParticipantsGetFreshNodesByDefault) {
  World w;
  auto& p1 = w.add_participant("P1");
  auto& p2 = w.add_participant("P2");
  EXPECT_NE(w.directory().address_of(p1.id()).node,
            w.directory().address_of(p2.id()).node);
}

TEST(World, FailureSinkCollects) {
  World w;
  auto& p1 = w.add_participant("P1");
  auto& p2 = w.add_participant("P2");
  const auto& decl = w.actions().declare("A", ex::shapes::star(1));
  const auto& inst = w.actions().create_instance(decl, {p1.id(), p2.id()});
  const action::EnterConfig config =
      action::EnterConfig::with(action::uniform_handlers(
          decl.tree(), ex::HandlerResult::signalling(decl.tree().root())));
  // signalling from an outermost action reaches the failure sink
  ASSERT_TRUE(p1.enter(inst.instance, config));
  ASSERT_TRUE(p2.enter(inst.instance, config));
  w.at(100, [&] { p1.raise("s1"); });
  w.run();
  ASSERT_EQ(w.failures().size(), 1u);
  EXPECT_EQ(w.failures()[0].instance, inst.instance);
}

TEST(World, ResolutionMessageAccounting) {
  World w;
  auto& p1 = w.add_participant("P1");
  auto& p2 = w.add_participant("P2");
  const auto& decl = w.actions().declare("A", ex::shapes::star(1));
  const auto& inst = w.actions().create_instance(decl, {p1.id(), p2.id()});
  const action::EnterConfig config = action::EnterConfig::with(
      action::uniform_handlers(decl.tree(), ex::HandlerResult::recovered()));
  ASSERT_TRUE(p1.enter(inst.instance, config));
  ASSERT_TRUE(p2.enter(inst.instance, config));
  w.at(100, [&] { p1.raise("s1"); });
  w.run();
  const obs::Metrics& m = w.metrics();
  EXPECT_EQ(m.resolution_messages(),
            m.sent(net::MsgKind::kException) +
                m.sent(net::MsgKind::kHaveNested) +
                m.sent(net::MsgKind::kNestedCompleted) +
                m.sent(net::MsgKind::kAck) +
                m.sent(net::MsgKind::kCommit));
  EXPECT_EQ(m.resolution_messages(), 3);
}

}  // namespace
}  // namespace caa::rt
