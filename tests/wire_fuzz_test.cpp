// Robustness sweep: every protocol decoder fed deterministic pseudo-random
// byte soup and truncations of valid messages. No decode may crash or
// return success on garbage lengths; this backs the rule that "a remote
// node must never be able to crash us with a bad packet".
#include <gtest/gtest.h>

#include "caa/action_instance.h"
#include "caa/world.h"
#include "exit/leave_log.h"
#include "overlay/disseminator.h"
#include "resolve/messages.h"
#include "txn/transaction.h"
#include "util/rng.h"

namespace caa {
namespace {

net::Bytes random_bytes(Rng& rng, std::size_t n) {
  net::Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.below(256));
  return b;
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, AllDecodersSurviveGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto n = static_cast<std::size_t>(rng.below(64));
    const net::Bytes b = random_bytes(rng, n);
    // None of these may crash; results may be ok or error.
    (void)resolve::decode_exception(b);
    (void)resolve::decode_have_nested(b);
    (void)resolve::decode_nested_completed(b);
    (void)resolve::decode_ack(b);
    (void)resolve::decode_commit(b);
    (void)resolve::decode_crash_sync(b);
    (void)resolve::decode_fast_cover(b);
    (void)resolve::peek_scope_round(b);
    (void)action::decode_done(b);
    (void)action::decode_leave(b);
    (void)exit::decode_leave_ack(b);
    (void)overlay::Disseminator::peek_envelope_scope(b);
    (void)txn::decode_op_request(b);
    (void)txn::decode_op_reply(b);
    (void)txn::decode_prepare(b);
    (void)txn::decode_vote(b);
    (void)txn::decode_decision(b);
    (void)txn::decode_decision_ack(b);
  }
}

TEST_P(WireFuzz, TruncationsOfValidMessagesFailCleanly) {
  Rng rng(GetParam() ^ 0xdead);
  const net::Bytes full = resolve::encode(resolve::NestedCompletedMsg{
      ActionInstanceId(rng.next()), static_cast<std::uint32_t>(rng.below(10)),
      ObjectId(static_cast<std::uint32_t>(rng.below(100))),
      ExceptionId(static_cast<std::uint32_t>(rng.below(100)))});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    net::Bytes truncated(full.begin(),
                         full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(resolve::decode_nested_completed(truncated).is_ok());
  }
  // The full message decodes.
  EXPECT_TRUE(resolve::decode_nested_completed(full).is_ok());

  const net::Bytes op = txn::encode(txn::TxnOpRequest{
      1, TxnId(2), TxnId(2), TxnId::invalid(), txn::TxnOp::kWrite, "xy", 7});
  for (std::size_t cut = 0; cut < op.size(); ++cut) {
    net::Bytes truncated(op.begin(),
                         op.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(txn::decode_op_request(truncated).is_ok());
  }
  EXPECT_TRUE(txn::decode_op_request(op).is_ok());
}

TEST_P(WireFuzz, CrashSyncFastCoverLeaveAckTruncationsFailCleanly) {
  Rng rng(GetParam() ^ 0xbeef);
  const auto obj = [&] {
    return ObjectId(static_cast<std::uint32_t>(rng.below(100)));
  };

  const net::Bytes sync = resolve::encode(resolve::CrashSyncMsg{
      ActionInstanceId(rng.next()), static_cast<std::uint32_t>(rng.below(10)),
      obj(), obj(), resolve::CrashSyncMsg::Phase::kReply,
      static_cast<std::uint32_t>(rng.below(10)), obj(),
      ExceptionId(static_cast<std::uint32_t>(rng.below(100)))});
  for (std::size_t cut = 0; cut < sync.size(); ++cut) {
    const net::Bytes truncated(
        sync.begin(), sync.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(resolve::decode_crash_sync(truncated).is_ok());
  }
  EXPECT_TRUE(resolve::decode_crash_sync(sync).is_ok());

  const net::Bytes cover = resolve::encode(resolve::FastCoverMsg{
      ActionInstanceId(rng.next()), static_cast<std::uint32_t>(rng.below(10)),
      obj(), resolve::FastCoverMsg::Phase::kReport,
      ExceptionId(static_cast<std::uint32_t>(rng.below(100))),
      ExceptionId(static_cast<std::uint32_t>(rng.below(100)))});
  for (std::size_t cut = 0; cut < cover.size(); ++cut) {
    const net::Bytes truncated(
        cover.begin(), cover.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(resolve::decode_fast_cover(truncated).is_ok());
  }
  EXPECT_TRUE(resolve::decode_fast_cover(cover).is_ok());

  const net::Bytes ack = exit::encode(exit::LeaveAckMsg{
      ActionInstanceId(rng.next()), static_cast<std::uint32_t>(rng.below(10)),
      obj()});
  for (std::size_t cut = 0; cut < ack.size(); ++cut) {
    const net::Bytes truncated(
        ack.begin(), ack.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(exit::decode_leave_ack(truncated).is_ok());
  }
  EXPECT_TRUE(exit::decode_leave_ack(ack).is_ok());
}

TEST(WireFuzzFixed, BadEnumValuesRejected) {
  // A TxnOpRequest with op byte out of range.
  net::WireWriter w;
  w.u64(1);
  w.u64(2);
  w.u64(2);
  w.u64(0);
  w.u8(250);  // invalid op
  w.str("x");
  w.i64(0);
  EXPECT_FALSE(txn::decode_op_request(std::move(w).take()).is_ok());

  net::WireWriter w2;  // LeaveMsg with outcome 9
  w2.u64(1);
  w2.u32(0);
  w2.u8(9);
  w2.u32(0);
  w2.u32(0);
  EXPECT_FALSE(action::decode_leave(std::move(w2).take()).is_ok());

  net::WireWriter w3;  // CrashSyncMsg with phase 7 (> kGone)
  w3.u64(1);
  w3.u32(0);
  w3.u32(2);
  w3.u32(3);
  w3.u32(7);
  w3.u32(0);
  w3.u32(0);
  w3.u32(0);
  EXPECT_FALSE(resolve::decode_crash_sync(std::move(w3).take()).is_ok());

  net::WireWriter w4;  // FastCoverMsg with phase 42 (> kStale)
  w4.u64(1);
  w4.u32(0);
  w4.u32(2);
  w4.u32(42);
  w4.u32(0);
  w4.u32(0);
  EXPECT_FALSE(resolve::decode_fast_cover(std::move(w4).take()).is_ok());
}

// World-level garbage injection for the message kinds whose decoding lives
// inside their handlers (relay envelopes, the four Paxos messages,
// LeaveAck): a participant fed byte soup of every such kind must neither
// crash nor wedge — the subsequent resolution round still completes.
TEST_P(WireFuzz, HandlersSurviveGarbagePayloadsMidAction) {
  Rng rng(GetParam() ^ 0xfeed);
  World w({.exit_protocol = exit::ExitKind::kPaxos});
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  auto& o3 = w.add_participant("O3");

  ex::ExceptionTree tree;
  tree.declare("boom");
  tree.freeze();
  const auto& decl = w.actions().declare("A1", tree);
  const auto& a1 =
      w.actions().create_instance(decl, {o1.id(), o2.id(), o3.id()});
  const auto config = action::EnterConfig::with(
      action::uniform_handlers(decl.tree(), ex::HandlerResult::recovered()));
  ASSERT_TRUE(o1.enter(a1.instance, config));
  ASSERT_TRUE(o2.enter(a1.instance, config));
  ASSERT_TRUE(o3.enter(a1.instance, config));

  constexpr net::MsgKind kTargets[] = {
      net::MsgKind::kRelay,        net::MsgKind::kPaxosPrepare,
      net::MsgKind::kPaxosPromise, net::MsgKind::kPaxosVote,
      net::MsgKind::kPaxosAccepted, net::MsgKind::kActionLeaveAck,
      net::MsgKind::kFastCover,    net::MsgKind::kCrashSync,
  };
  w.at(500, [&] {
    for (const net::MsgKind kind : kTargets) {
      for (int i = 0; i < 20; ++i) {
        o1.on_message(o3.id(), kind,
                      random_bytes(rng, static_cast<std::size_t>(
                                            rng.below(48))));
        // Well-formed header (the live scope) with garbage after it: must
        // fail payload validation, not poison the instance's state.
        net::WireWriter header;
        header.u64(a1.instance.value());
        header.u32(0);
        net::Bytes forged = std::move(header).take();
        const net::Bytes tail =
            random_bytes(rng, static_cast<std::size_t>(rng.below(32)));
        forged.insert(forged.end(), tail.begin(), tail.end());
        o2.on_message(o3.id(), kind, forged);
      }
    }
  });
  w.at(1000, [&] { o1.raise("boom"); });
  w.run();

  EXPECT_TRUE(w.simulator().idle());
  for (action::Participant* p : {&o1, &o2, &o3}) {
    ASSERT_EQ(p->handled().size(), 1u) << p->name();
    EXPECT_FALSE(p->in_action()) << p->name();
  }
  EXPECT_TRUE(w.failures().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace caa
