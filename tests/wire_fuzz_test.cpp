// Robustness sweep: every protocol decoder fed deterministic pseudo-random
// byte soup and truncations of valid messages. No decode may crash or
// return success on garbage lengths; this backs the rule that "a remote
// node must never be able to crash us with a bad packet".
#include <gtest/gtest.h>

#include "caa/action_instance.h"
#include "resolve/messages.h"
#include "txn/transaction.h"
#include "util/rng.h"

namespace caa {
namespace {

net::Bytes random_bytes(Rng& rng, std::size_t n) {
  net::Bytes b(n);
  for (auto& x : b) x = static_cast<std::byte>(rng.below(256));
  return b;
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, AllDecodersSurviveGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto n = static_cast<std::size_t>(rng.below(64));
    const net::Bytes b = random_bytes(rng, n);
    // None of these may crash; results may be ok or error.
    (void)resolve::decode_exception(b);
    (void)resolve::decode_have_nested(b);
    (void)resolve::decode_nested_completed(b);
    (void)resolve::decode_ack(b);
    (void)resolve::decode_commit(b);
    (void)resolve::peek_scope_round(b);
    (void)action::decode_done(b);
    (void)action::decode_leave(b);
    (void)txn::decode_op_request(b);
    (void)txn::decode_op_reply(b);
    (void)txn::decode_prepare(b);
    (void)txn::decode_vote(b);
    (void)txn::decode_decision(b);
    (void)txn::decode_decision_ack(b);
  }
}

TEST_P(WireFuzz, TruncationsOfValidMessagesFailCleanly) {
  Rng rng(GetParam() ^ 0xdead);
  const net::Bytes full = resolve::encode(resolve::NestedCompletedMsg{
      ActionInstanceId(rng.next()), static_cast<std::uint32_t>(rng.below(10)),
      ObjectId(static_cast<std::uint32_t>(rng.below(100))),
      ExceptionId(static_cast<std::uint32_t>(rng.below(100)))});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    net::Bytes truncated(full.begin(),
                         full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(resolve::decode_nested_completed(truncated).is_ok());
  }
  // The full message decodes.
  EXPECT_TRUE(resolve::decode_nested_completed(full).is_ok());

  const net::Bytes op = txn::encode(txn::TxnOpRequest{
      1, TxnId(2), TxnId(2), TxnId::invalid(), txn::TxnOp::kWrite, "xy", 7});
  for (std::size_t cut = 0; cut < op.size(); ++cut) {
    net::Bytes truncated(op.begin(),
                         op.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(txn::decode_op_request(truncated).is_ok());
  }
  EXPECT_TRUE(txn::decode_op_request(op).is_ok());
}

TEST(WireFuzzFixed, BadEnumValuesRejected) {
  // A TxnOpRequest with op byte out of range.
  net::WireWriter w;
  w.u64(1);
  w.u64(2);
  w.u64(2);
  w.u64(0);
  w.u8(250);  // invalid op
  w.str("x");
  w.i64(0);
  EXPECT_FALSE(txn::decode_op_request(std::move(w).take()).is_ok());

  net::WireWriter w2;  // LeaveMsg with outcome 9
  w2.u64(1);
  w2.u32(0);
  w2.u8(9);
  w2.u32(0);
  w2.u32(0);
  EXPECT_FALSE(action::decode_leave(std::move(w2).take()).is_ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace caa
