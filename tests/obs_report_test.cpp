// Run-report tests: the per-action, per-round §4.4 tables must reproduce
// the paper's closed forms, and their grand total must equal the headline
// resolution_messages() quantity.
#include <gtest/gtest.h>

#include <string>

#include "obs/report.h"
#include "scenario/scenarios.h"

namespace caa {
namespace {

/// Sums every recorded round of every observed action instance.
std::int64_t tabulated_total(const obs::Metrics& metrics) {
  std::int64_t total = 0;
  for (const ActionInstanceId scope : metrics.observed_actions()) {
    const auto* rounds = metrics.rounds_of(scope);
    if (rounds == nullptr) continue;
    for (const obs::RoundCounts& rc : *rounds) total += rc.total();
  }
  return total;
}

TEST(RunReport, ReproducesTheGeneralFormula) {
  // §4.4: a flat action of N objects, P simultaneous raisers and Q nested
  // singleton actions costs (N-1)(2P+3Q+1) messages.
  struct Case {
    int n, p, q;
    std::int64_t expected;
  };
  const Case cases[] = {
      {3, 1, 0, 6},    // (3-1)(2*1+1)        — the paper's base example
      {3, 2, 0, 10},   // (3-1)(2*2+1)        — concurrent raisers
      {4, 2, 1, 24},   // (4-1)(2*2+3*1+1)    — raisers + a nested action
  };
  for (const Case& c : cases) {
    SCOPED_TRACE("N=" + std::to_string(c.n) + " P=" + std::to_string(c.p) +
                 " Q=" + std::to_string(c.q));
    scenario::FlatOptions options;
    options.participants = c.n;
    options.raisers = c.p;
    options.nested = c.q;
    options.world.observe = true;
    scenario::FlatScenario s(options);
    const scenario::RunStats stats = s.run();
    EXPECT_TRUE(stats.all_handled);
    EXPECT_EQ(stats.messages,
              (c.n - 1) * (2 * c.p + 3 * c.q + 1));
    EXPECT_EQ(stats.messages, c.expected);

    // The per-round tabulation must account for every protocol message —
    // nothing double-counted, nothing missed.
    const obs::Metrics& metrics = s.world().metrics();
    EXPECT_EQ(tabulated_total(metrics), metrics.resolution_messages());

    // The rendered report carries the same totals and resolves the action
    // name through the World's ActionManager.
    const std::string report = s.world().run_report();
    EXPECT_NE(report.find("resolution messages sent: " +
                          std::to_string(c.expected)),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("action A #"), std::string::npos) << report;
  }
}

TEST(RunReport, SingleRoundScenarioTabulatesOneRound) {
  scenario::FlatOptions options;
  options.participants = 3;
  options.raisers = 1;
  options.world.observe = true;
  scenario::FlatScenario s(options);
  s.run();
  const obs::Metrics& metrics = s.world().metrics();
  const auto actions = metrics.observed_actions();
  ASSERT_EQ(actions.size(), 1u);
  const auto* rounds = metrics.rounds_of(actions.front());
  ASSERT_NE(rounds, nullptr);
  std::int64_t nonzero_rounds = 0;
  for (const obs::RoundCounts& rc : *rounds) {
    if (rc.total() > 0) ++nonzero_rounds;
  }
  EXPECT_EQ(nonzero_rounds, 1);
  // One raiser: N-1 Exceptions out, N-1 ACKs back, N-1 Commits out.
  const obs::RoundCounts& rc = rounds->front();
  EXPECT_EQ(rc.exception, 2);
  EXPECT_EQ(rc.ack, 2);
  EXPECT_EQ(rc.commit, 2);
  EXPECT_EQ(rc.have_nested, 0);
  EXPECT_EQ(rc.nested_completed, 0);
}

TEST(RunReport, DisabledWorldStillReportsHeadlineTotals) {
  scenario::FlatOptions options;
  options.participants = 3;
  options.raisers = 1;
  scenario::FlatScenario s(options);  // observe defaults to off
  s.run();
  const std::string report = s.world().run_report();
  EXPECT_NE(report.find("resolution messages sent: 6"), std::string::npos)
      << report;
  // No per-round tables without observability.
  EXPECT_EQ(report.find("action "), std::string::npos) << report;
}

TEST(RunReport, UnknownActionNameFallsBackToNumericId) {
  scenario::FlatOptions options;
  options.world.observe = true;
  scenario::FlatScenario s(options);
  s.run();
  // Render without a name resolver: rows fall back to "instance <id>".
  const std::string report = obs::run_report(s.world().metrics());
  EXPECT_NE(report.find("instance "), std::string::npos) << report;
}

}  // namespace
}  // namespace caa
