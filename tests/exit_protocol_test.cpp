// Exit-protocol seam tests: the ExitProtocol/ExitHost contract via a fake
// protocol injected at the seam, barrier-vs-paxos behavioural equivalence
// (same resolved exceptions on the same seed), Paxos Commit liveness when
// the exit leader crashes mid-decision, LeaveAck-driven GC of final-Leave
// records, and chaos smoke under both protocols.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "caa/world.h"
#include "exit/exit_protocol.h"
#include "exit/leave_log.h"
#include "fault/chaos.h"
#include "fault/injector.h"
#include "scenario/scenarios.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

ex::ExceptionTree crash_tree() {
  ex::ExceptionTree tree;
  tree.declare("app_fault");
  tree.declare("peer_crash");
  tree.freeze();
  return tree;
}

/// CrashWorld with a configurable WorldConfig and per-entry EnterConfig
/// tweaks — the committee idiom shared by the crash/overlay tests.
struct ExitWorld {
  World world;
  std::vector<Participant*> objects;
  const action::ActionDecl* decl = nullptr;
  const action::InstanceInfo* inst = nullptr;

  explicit ExitWorld(WorldConfig config = {}) : world(config) {}

  void build(int n, const std::function<EnterConfig::Builder(
                 EnterConfig::Builder)>& tweak = {}) {
    std::vector<ObjectId> ids;
    for (int i = 0; i < n; ++i) {
      objects.push_back(&world.add_participant("O" + std::to_string(i + 1)));
      ids.push_back(objects.back()->id());
    }
    decl = &world.actions().declare("A", crash_tree());
    inst = &world.actions().create_instance(*decl, ids);
    for (auto* o : objects) {
      EnterConfig::Builder builder =
          EnterConfig::with(uniform_handlers(
                                decl->tree(),
                                ex::HandlerResult::recovered(100)))
              .committee(2)
              .on_peer_crash(decl->tree().find("peer_crash"));
      if (tweak) builder = tweak(std::move(builder));
      ASSERT_TRUE(o->enter(inst->instance, builder));
    }
  }

  /// Crashes object `victim`'s node and informs the survivors.
  void crash(int victim, sim::Time at) {
    world.at(at, [this, victim] {
      fault::FaultInjector::crash_node(
          world, world.directory().address_of(objects[victim]->id()).node);
    });
  }

  void complete_all_at(sim::Time at) {
    for (auto* o : objects) {
      world.at(at, [o] {
        if (o->in_action()) o->complete();
      });
    }
  }
};

// ---- The seam itself: a fake protocol injected via exit_factory -----------

/// Minimal custom strategy: decides instantly from this member's own Done
/// (valid for the single-member committee the test runs it in). Records
/// every contract call so the test can assert the host drove the seam.
class FakeExitProtocol final : public exit::ExitProtocol {
 public:
  struct Log {
    int completes = 0;
    int messages = 0;
    int crashes = 0;
    int restores = 0;
    action::LeaveOutcome outcome = action::LeaveOutcome::kRestored;
  };

  FakeExitProtocol(exit::ExitHost& host, const action::InstanceInfo& info,
                   Log* log)
      : host_(host), info_(info), log_(log) {}

  [[nodiscard]] exit::ExitKind kind() const override {
    return exit::ExitKind::kBarrier;  // reported kind is free-form here
  }

  void on_complete(const action::DoneMsg& m) override {
    ++log_->completes;
    host_.exit_trace("fake exit", "deciding from own done");
    const action::LeaveMsg leave =
        host_.exit_decide(info_.instance, m.round, {m});
    log_->outcome = leave.outcome;
    host_.exit_deliver_leave(leave);
  }
  void on_message(ObjectId, net::MsgKind, const net::Bytes&) override {
    ++log_->messages;
  }
  void on_peer_crashed(ObjectId, ObjectId, ObjectId) override {
    ++log_->crashes;
  }
  void on_restored() override { ++log_->restores; }

 private:
  exit::ExitHost& host_;
  const action::InstanceInfo& info_;
  Log* log_;
};

TEST(ExitSeam, FakeProtocolDrivesTheExitThroughTheHost) {
  FakeExitProtocol::Log log;
  ExitWorld w;
  w.build(1, [&log](EnterConfig::Builder b) {
    return std::move(b).exit_factory(
        [&log](exit::ExitHost& host, const action::InstanceInfo& info) {
          return std::make_unique<FakeExitProtocol>(host, info, &log);
        });
  });
  w.world.at(1000, [&] { w.objects[0]->complete(); });
  w.world.run();

  EXPECT_EQ(log.completes, 1);
  EXPECT_EQ(log.outcome, action::LeaveOutcome::kCommitted);
  EXPECT_FALSE(w.objects[0]->in_action());
  // The scope tore down, so the protocol instance is gone from the seam.
  EXPECT_EQ(w.objects[0]->exit_protocol_of(w.inst->instance), nullptr);
}

TEST(ExitSeam, EnterOverrideAndWorldDefaultSelectTheProtocol) {
  WorldConfig config;
  config.exit_protocol = exit::ExitKind::kPaxos;
  ExitWorld defaulted(config);
  defaulted.build(3);
  for (auto* o : defaulted.objects) {
    const exit::ExitProtocol* p = o->exit_protocol_of(defaulted.inst->instance);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), exit::ExitKind::kPaxos);
  }

  ExitWorld overridden;  // world default barrier, per-entry paxos
  overridden.build(3, [](EnterConfig::Builder b) {
    return std::move(b).exit_protocol(exit::ExitKind::kPaxos);
  });
  const exit::ExitProtocol* p =
      overridden.objects[0]->exit_protocol_of(overridden.inst->instance);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), exit::ExitKind::kPaxos);

  defaulted.complete_all_at(1000);
  overridden.complete_all_at(1000);
  defaulted.world.run();
  overridden.world.run();
  for (auto* o : defaulted.objects) EXPECT_FALSE(o->in_action());
  for (auto* o : overridden.objects) EXPECT_FALSE(o->in_action());
}

// ---- Barrier / Paxos behavioural equivalence ------------------------------

std::uint64_t resolved_with(exit::ExitKind kind, std::uint32_t committee,
                            bool tree = false) {
  scenario::FlatOptions options;
  options.participants = 8;
  options.raisers = 2;
  options.nested = 1;
  options.committee = committee;
  options.world.exit_protocol = kind;
  if (tree) {
    options.world.overlay.mode = overlay::OverlayParams::Mode::kTree;
    options.world.overlay.fanout = 3;
  }
  scenario::FlatScenario s(options);
  const scenario::RunStats stats = s.run();
  EXPECT_TRUE(stats.all_handled)
      << exit::exit_kind_name(kind) << " committee " << committee;
  return scenario::resolved_checksum(s.objects());
}

TEST(ExitEquivalence, PaxosResolvesSameExceptionsAsBarrier) {
  for (std::uint32_t committee = 1; committee <= 3; ++committee) {
    EXPECT_EQ(resolved_with(exit::ExitKind::kBarrier, committee),
              resolved_with(exit::ExitKind::kPaxos, committee))
        << "committee " << committee;
  }
}

TEST(ExitEquivalence, PaxosComposesWithTreeOverlay) {
  // The seam routes through the overlay: paxos-over-tree must resolve the
  // exact same exceptions as barrier-over-flat on the same seed.
  EXPECT_EQ(resolved_with(exit::ExitKind::kBarrier, 2),
            resolved_with(exit::ExitKind::kPaxos, 2, /*tree=*/true));
}

// ---- Paxos non-blocking liveness ------------------------------------------

TEST(PaxosExit, CommitteeSurvivesExitLeaderCrashMidDecision) {
  // Five members start exiting at t=1000; the exit leader (lowest member,
  // the barrier's blocking window) dies while the votes are in flight. A
  // live quorum of acceptors remains, so the survivors must finish the
  // commit without him.
  WorldConfig config;
  config.exit_protocol = exit::ExitKind::kPaxos;
  ExitWorld w(config);
  w.build(5);
  w.complete_all_at(1000);
  w.crash(0, 1002);  // votes are on the wire; the leader never collects them
  w.world.run();

  for (int i = 1; i < 5; ++i) {
    EXPECT_FALSE(w.objects[i]->in_action()) << "object " << i;
  }
}

TEST(PaxosExit, SurvivesTwoLeaderCrashesInARow) {
  // Successive assassinations of whoever currently leads: 2F+1 = 5
  // acceptors over 7 members tolerate F = 2 crashes.
  WorldConfig config;
  config.exit_protocol = exit::ExitKind::kPaxos;
  ExitWorld w(config);
  w.build(7);
  w.complete_all_at(1000);
  w.crash(0, 1002);
  w.crash(1, 1040);  // the next leader dies while re-proposing
  w.world.run();

  for (int i = 2; i < 7; ++i) {
    EXPECT_FALSE(w.objects[i]->in_action()) << "object " << i;
  }
}

// ---- LeaveLog GC ----------------------------------------------------------

TEST(LeaveLog, AcksCollectRecordsAndCrashesWaive) {
  const std::vector<ObjectId> members{ObjectId(1), ObjectId(2), ObjectId(3)};
  action::LeaveMsg leave;
  leave.scope = ActionInstanceId(7);
  leave.round = 0;

  exit::LeaveLog log;
  log.record(leave, members, ObjectId(1), {}, /*gc=*/true);
  EXPECT_EQ(log.retained(), 1u);
  ASSERT_NE(log.find(leave.scope), nullptr);
  EXPECT_FALSE(log.on_ack(leave.scope, ObjectId(2)));
  EXPECT_TRUE(log.on_ack(leave.scope, ObjectId(3)));
  EXPECT_EQ(log.retained(), 0u);
  EXPECT_EQ(log.find(leave.scope), nullptr);

  // A crashed member never ACKs: waive completes the entry.
  exit::LeaveLog waived;
  waived.record(leave, members, ObjectId(1), {}, /*gc=*/true);
  EXPECT_EQ(waived.waive(ObjectId(2)), 0u);
  EXPECT_EQ(waived.waive(ObjectId(3)), 1u);
  EXPECT_EQ(waived.retained(), 0u);

  // ACKs that outrun the local Leave are buffered and count at record time.
  exit::LeaveLog early;
  EXPECT_FALSE(early.on_ack(leave.scope, ObjectId(2)));
  EXPECT_FALSE(early.on_ack(leave.scope, ObjectId(3)));
  early.record(leave, members, ObjectId(1), {}, /*gc=*/true);
  EXPECT_EQ(early.retained(), 0u);

  // Without GC the record is retained forever (the replay guarantee).
  exit::LeaveLog forever;
  forever.record(leave, members, ObjectId(1), {}, /*gc=*/false);
  EXPECT_FALSE(forever.on_ack(leave.scope, ObjectId(2)));
  EXPECT_FALSE(forever.on_ack(leave.scope, ObjectId(3)));
  EXPECT_EQ(forever.retained(), 1u);
}

TEST(LeaveLog, WorldGcDrainsEveryRetainedRecord) {
  auto retained_after = [](bool gc) {
    scenario::FlatOptions options;
    options.participants = 6;
    options.raisers = 2;
    options.committee = 2;
    options.world.exit_gc = gc;
    scenario::FlatScenario s(options);
    const scenario::RunStats stats = s.run();
    EXPECT_TRUE(stats.all_handled);
    std::size_t retained = 0;
    for (const Participant* o : s.objects()) {
      retained += o->leave_log().retained();
    }
    if (gc) {
      EXPECT_GT(s.world().metrics().value("exit.leave_recorded"), 0);
      EXPECT_GT(s.world().metrics().value("exit.leave_collected"), 0);
    }
    return retained;
  };
  EXPECT_GT(retained_after(false), 0u);  // pre-GC behaviour: kept forever
  EXPECT_EQ(retained_after(true), 0u);   // every record ACK-collected
}

// ---- Chaos smoke under both protocols -------------------------------------

TEST(ExitChaos, PaxosCrashHeavySmokeRunsClean) {
  fault::ChaosOptions options;
  options.seed = 42;
  options.plans = 300;
  options.threads = 0;
  options.mix = fault::FaultMix::kCrashHeavy;
  options.exit = exit::ExitKind::kPaxos;
  const fault::ChaosReport report = fault::run_chaos_campaign(options);
  EXPECT_EQ(report.violations, 0u) << report.failure_report();
}

TEST(ExitChaos, AssassinPlansRoundTripAndKeepTheProtocol) {
  // The exit directive and the assassin trigger survive serialize/parse,
  // so a shrunk repro replays against the protocol it was found with.
  fault::FaultPlan plan;
  plan.exit = exit::ExitKind::kPaxos;
  fault::FaultEvent assassin;
  assassin.kind = fault::FaultKind::kExitAssassin;
  assassin.extra = 25;
  plan.events.push_back(assassin);

  const std::string text = plan.to_text();
  EXPECT_NE(text.find("exit paxos"), std::string::npos) << text;
  EXPECT_NE(text.find("assassin"), std::string::npos) << text;
  const auto parsed = fault::FaultPlan::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), plan);
}

}  // namespace
}  // namespace caa
