// Fault plans are plain data with a text wire format: parse(to_text())
// must reproduce any plan bit-identically, generation must be a pure
// function of (seed, options), and structural validation must catch every
// malformed plan before it reaches an injector.
#include <gtest/gtest.h>

#include "fault/chaos.h"
#include "fault/plan.h"
#include "util/rng.h"

namespace caa::fault {
namespace {

constexpr FaultMix kAllMixes[] = {FaultMix::kMixed, FaultMix::kCrashHeavy,
                                  FaultMix::kNetworkOnly,
                                  FaultMix::kResolverHunt};

TEST(FaultPlan, GeneratedPlansRoundTripThroughText) {
  for (const FaultMix mix : kAllMixes) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      PlanGenOptions options;
      options.mix = mix;
      options.nodes = 3 + static_cast<std::uint32_t>(seed % 4);
      Rng rng(seed);
      const FaultPlan plan = generate_plan(rng, options);
      ASSERT_TRUE(plan.validate(options.nodes).is_ok())
          << fault_mix_name(mix) << " seed " << seed;
      const auto parsed = FaultPlan::parse(plan.to_text());
      ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
      EXPECT_EQ(parsed.value(), plan)
          << fault_mix_name(mix) << " seed " << seed << "\n"
          << plan.to_text();
    }
  }
}

TEST(FaultPlan, GenerationIsDeterministic) {
  for (const FaultMix mix : kAllMixes) {
    PlanGenOptions options;
    options.mix = mix;
    Rng a(99), b(99);
    EXPECT_EQ(generate_plan(a, options), generate_plan(b, options));
  }
}

TEST(FaultPlan, CampaignPlanIsAPureFunctionOfTheTrialSeed) {
  ChaosOptions options;
  const FaultPlan once = chaos_plan(0xfeedULL, options);
  const FaultPlan again = chaos_plan(0xfeedULL, options);
  EXPECT_EQ(once, again);
  EXPECT_TRUE(
      once.validate(trial_participants(0xfeedULL, options)).is_ok());
}

TEST(FaultPlan, MixesGenerateOnlyTheirDeclaredKinds) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    PlanGenOptions options;
    options.mix = FaultMix::kNetworkOnly;
    Rng rng(seed);
    for (const FaultEvent& e : generate_plan(rng, options).events) {
      EXPECT_NE(e.kind, FaultKind::kCrash);
      EXPECT_NE(e.kind, FaultKind::kRestart);
      EXPECT_NE(e.kind, FaultKind::kResolverCrash);
    }
    options.mix = FaultMix::kResolverHunt;
    Rng hunt_rng(seed);
    const FaultPlan hunt = generate_plan(hunt_rng, options);
    std::size_t triggers = 0;
    for (const FaultEvent& e : hunt.events) {
      triggers += e.kind == FaultKind::kResolverCrash ? 1 : 0;
    }
    EXPECT_EQ(triggers, 1u);
  }
}

TEST(FaultPlan, ParseRejectsMalformedText) {
  // Missing header.
  EXPECT_FALSE(FaultPlan::parse("crash node=0 at=100\n").is_ok());
  EXPECT_FALSE(FaultPlan::parse("").is_ok());
  // Unknown directive, named with its line.
  const auto unknown = FaultPlan::parse("faultplan v1\nmeteor node=0 at=1\n");
  ASSERT_FALSE(unknown.is_ok());
  EXPECT_NE(unknown.status().message().find("line 2"), std::string::npos);
  // Wrong field count and non-numeric values.
  EXPECT_FALSE(FaultPlan::parse("faultplan v1\ncrash node=0\n").is_ok());
  EXPECT_FALSE(FaultPlan::parse("faultplan v1\ncrash node=x at=1\n").is_ok());
  EXPECT_FALSE(
      FaultPlan::parse("faultplan v1\ncrash node=0 at=-5\n").is_ok());
  // Comments and blank lines are fine.
  const auto ok = FaultPlan::parse(
      "faultplan v1\n# a comment\n\ncrash node=1 at=500\n");
  ASSERT_TRUE(ok.is_ok()) << ok.status().message();
  ASSERT_EQ(ok.value().events.size(), 1u);
  EXPECT_EQ(ok.value().events[0].a, 1u);
}

TEST(FaultPlan, ValidateCatchesStructuralProblems) {
  auto plan_with = [](FaultEvent e) {
    FaultPlan plan;
    plan.events.push_back(e);
    return plan;
  };
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.a = 7;
  EXPECT_FALSE(plan_with(crash).validate(4).is_ok());  // node out of range

  FaultEvent window;
  window.kind = FaultKind::kPartition;
  window.a = 0;
  window.b = 0;
  window.at = 100;
  window.until = 200;
  EXPECT_FALSE(plan_with(window).validate(4).is_ok());  // self-link
  window.b = 1;
  window.until = 50;
  EXPECT_FALSE(plan_with(window).validate(4).is_ok());  // inverted window
  window.until = 200;
  EXPECT_TRUE(plan_with(window).validate(4).is_ok());

  FaultEvent burst = window;
  burst.kind = FaultKind::kDropBurst;
  burst.permille = 1001;
  EXPECT_FALSE(plan_with(burst).validate(4).is_ok());  // permille > 1000

  FaultEvent trigger;
  trigger.kind = FaultKind::kResolverCrash;
  trigger.extra = 50;
  FaultPlan two;
  two.events = {trigger, trigger};
  EXPECT_FALSE(two.validate(4).is_ok());  // at most one trigger
  FaultPlan one;
  one.events = {trigger};
  EXPECT_TRUE(one.validate(4).is_ok());
}

TEST(FaultPlan, AvoidDirectiveRoundTrips) {
  FaultPlan plan;
  plan.avoid = true;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.a = 1;
  crash.at = 500;
  plan.events.push_back(crash);
  const std::string text = plan.to_text();
  EXPECT_NE(text.find("avoid\n"), std::string::npos);
  const auto parsed = FaultPlan::parse(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), plan);
  // Off by default, omitted from the canonical text.
  FaultPlan off;
  EXPECT_EQ(off.to_text().find("avoid"), std::string::npos);
  // The bare directive takes no fields.
  EXPECT_FALSE(FaultPlan::parse("faultplan v1\navoid now\n").is_ok());
}

TEST(FaultPlan, MixNamesRoundTrip) {
  for (const FaultMix mix : kAllMixes) {
    const auto parsed = parse_fault_mix(fault_mix_name(mix));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), mix);
  }
  EXPECT_FALSE(parse_fault_mix("volcanic").is_ok());
}

}  // namespace
}  // namespace caa::fault
