// Tests of the transaction substrate: strict 2PL lock manager with
// wait-die, atomic-object hosts with before-images, nested transactions,
// and two-phase commit across hosts.
#include <gtest/gtest.h>

#include "caa/world.h"
#include "txn/atomic_object.h"
#include "txn/lock_manager.h"
#include "txn/txn_manager.h"

namespace caa::txn {
namespace {

TEST(LockManager, SharedLocksAreCompatible) {
  int wakes = 0;
  LockManager lm([&](const std::string&, TxnId, LockMode) { ++wakes; });
  const TxnId t1(10), t2(20);
  EXPECT_EQ(lm.acquire("x", t1, t1, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(lm.acquire("x", t2, t2, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_TRUE(lm.holds("x", t1, LockMode::kShared));
  EXPECT_TRUE(lm.holds("x", t2, LockMode::kShared));
  EXPECT_EQ(wakes, 0);
}

TEST(LockManager, ExclusiveConflictsWaitDie) {
  LockManager lm([](const std::string&, TxnId, LockMode) {});
  const TxnId older(10), younger(20);
  EXPECT_EQ(lm.acquire("x", younger, younger, LockMode::kExclusive),
            LockOutcome::kGranted);
  // Older requester waits...
  EXPECT_EQ(lm.acquire("x", older, older, LockMode::kExclusive),
            LockOutcome::kQueued);
  // ...while a younger one (vs the holder 'younger'... here older holder
  // comparison) dies.
  const TxnId youngest(30);
  EXPECT_EQ(lm.acquire("x", youngest, youngest, LockMode::kExclusive),
            LockOutcome::kDied);
}

TEST(LockManager, ReleaseWakesFifoQueue) {
  std::vector<TxnId> woken;
  LockManager lm(
      [&](const std::string&, TxnId txn, LockMode) { woken.push_back(txn); });
  const TxnId holder(30), w1(10), w2(20);
  EXPECT_EQ(lm.acquire("x", holder, holder, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(lm.acquire("x", w1, w1, LockMode::kExclusive),
            LockOutcome::kQueued);
  EXPECT_EQ(lm.acquire("x", w2, w2, LockMode::kShared),
            LockOutcome::kQueued);
  lm.release_all(holder);
  // FIFO: w1 (exclusive) is granted; w2 must keep waiting behind it.
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], w1);
  lm.release_all(w1);
  ASSERT_EQ(woken.size(), 2u);
  EXPECT_EQ(woken[1], w2);
}

TEST(LockManager, UpgradeSharedToExclusive) {
  LockManager lm([](const std::string&, TxnId, LockMode) {});
  const TxnId t1(10);
  EXPECT_EQ(lm.acquire("x", t1, t1, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(lm.acquire("x", t1, t1, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_TRUE(lm.holds("x", t1, LockMode::kExclusive));
}

TEST(LockManager, SameFamilyDoesNotConflict) {
  LockManager lm([](const std::string&, TxnId, LockMode) {});
  const TxnId top(10), child(40);
  EXPECT_EQ(lm.acquire("x", top, top, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(lm.acquire("x", child, top, LockMode::kExclusive),
            LockOutcome::kGranted);
}

TEST(LockManager, TransferMergesChildIntoParent) {
  LockManager lm([](const std::string&, TxnId, LockMode) {});
  const TxnId parent(10), child(11);
  EXPECT_EQ(lm.acquire("x", child, parent, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(lm.acquire("y", parent, parent, LockMode::kShared),
            LockOutcome::kGranted);
  lm.transfer(child, parent);
  EXPECT_TRUE(lm.holds("x", parent, LockMode::kExclusive));
  EXPECT_FALSE(lm.holds("x", child, LockMode::kShared));
}

// ---------------------------------------------------------------------------
// Host + client integration over the simulated network.
// ---------------------------------------------------------------------------

struct TxnWorld {
  World world;
  AtomicObjectHost host;
  AtomicObjectHost host2;
  TxnClient client;
  TxnClient client2;

  TxnWorld() {
    const NodeId n1 = world.add_node();
    const NodeId n2 = world.add_node();
    const NodeId n3 = world.add_node();
    const NodeId n4 = world.add_node();
    world.attach(host, "host1", n1);
    world.attach(host2, "host2", n2);
    world.attach(client, "client1", n3);
    world.attach(client2, "client2", n4);
    host.put_initial("a", 100);
    host.put_initial("b", 200);
    host2.put_initial("c", 300);
  }
};

TEST(TxnIntegration, ReadWriteCommit) {
  TxnWorld t;
  const TxnId txn = t.client.begin();
  Status commit_status = Status::internal("unset");
  std::int64_t read_value = -1;
  t.world.at(0, [&] {
    t.client.write(txn, t.host.id(), "a", 111, [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      t.client.read(txn, t.host.id(), "a", [&](Result<std::int64_t> v) {
        ASSERT_TRUE(v.is_ok());
        read_value = v.value();
        t.client.commit(txn, [&](Status s2) { commit_status = s2; });
      });
    });
  });
  t.world.run();
  EXPECT_EQ(read_value, 111);
  EXPECT_TRUE(commit_status.is_ok());
  EXPECT_EQ(t.host.peek("a"), 111);
  EXPECT_FALSE(t.host.has_locks(txn));
  EXPECT_EQ(t.client.commits(), 1);
}

TEST(TxnIntegration, AbortRestoresBeforeImages) {
  TxnWorld t;
  const TxnId txn = t.client.begin();
  t.world.at(0, [&] {
    t.client.write(txn, t.host.id(), "a", 999, [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      t.client.add(txn, t.host.id(), "b", 50, [&](Result<std::int64_t> v) {
        ASSERT_TRUE(v.is_ok());
        EXPECT_EQ(v.value(), 250);
        t.client.abort(txn, [](Status) {});
      });
    });
  });
  t.world.run();
  EXPECT_EQ(t.host.peek("a"), 100);
  EXPECT_EQ(t.host.peek("b"), 200);
  EXPECT_FALSE(t.host.has_locks(txn));
  EXPECT_EQ(t.client.aborts(), 1);
}

TEST(TxnIntegration, NestedChildCommitVisibleToParentOnly) {
  TxnWorld t;
  const TxnId parent = t.client.begin();
  bool done = false;
  t.world.at(0, [&] {
    t.client.write(parent, t.host.id(), "a", 1, [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      const TxnId child = t.client.begin(parent);
      t.client.write(child, t.host.id(), "b", 2, [&, child](Status s2) {
        ASSERT_TRUE(s2.is_ok());
        t.client.commit(child, [&](Status s3) {
          ASSERT_TRUE(s3.is_ok());
          // Child's write is applied but uncommitted globally; aborting the
          // parent must roll BOTH writes back.
          t.client.abort(parent, [&](Status) { done = true; });
        });
      });
    });
  });
  t.world.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(t.host.peek("a"), 100);
  EXPECT_EQ(t.host.peek("b"), 200);
}

TEST(TxnIntegration, NestedChildAbortKeepsParentWrites) {
  TxnWorld t;
  const TxnId parent = t.client.begin();
  Status commit_status = Status::internal("unset");
  t.world.at(0, [&] {
    t.client.write(parent, t.host.id(), "a", 1, [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      const TxnId child = t.client.begin(parent);
      t.client.write(child, t.host.id(), "b", 2, [&, child](Status s2) {
        ASSERT_TRUE(s2.is_ok());
        t.client.abort(child, [&](Status s3) {
          ASSERT_TRUE(s3.is_ok());
          t.client.commit(parent, [&](Status s4) { commit_status = s4; });
        });
      });
    });
  });
  t.world.run();
  EXPECT_TRUE(commit_status.is_ok());
  EXPECT_EQ(t.host.peek("a"), 1);    // parent write committed
  EXPECT_EQ(t.host.peek("b"), 200);  // child write undone
}

TEST(TxnIntegration, WaitDieYoungerVictimAborts) {
  TxnWorld t;
  // client1's txn is older (smaller object id => smaller txn id).
  const TxnId older = t.client.begin();
  const TxnId younger = t.client2.begin();
  Status younger_status = Status::ok();
  t.world.at(0, [&] {
    t.client.write(older, t.host.id(), "a", 1, [](Status s) {
      ASSERT_TRUE(s.is_ok());
    });
  });
  t.world.at(500, [&] {
    t.client2.write(younger, t.host.id(), "a", 2, [&](Status s) {
      younger_status = s;
      if (!s.is_ok()) t.client2.abort(younger, [](Status) {});
    });
  });
  t.world.at(5000, [&] { t.client.commit(older, [](Status) {}); });
  t.world.run();
  EXPECT_EQ(younger_status.code(), StatusCode::kConflict);
  EXPECT_EQ(t.host.peek("a"), 1);
  EXPECT_EQ(t.world.metrics().value("txn.wait_die_victims"), 1);
}

TEST(TxnIntegration, OlderWaitsUntilYoungerFinishes) {
  TxnWorld t;
  const TxnId older = t.client.begin();
  const TxnId younger = t.client2.begin();
  std::int64_t older_read = -1;
  t.world.at(0, [&] {
    t.client2.write(younger, t.host.id(), "a", 7, [](Status s) {
      ASSERT_TRUE(s.is_ok());
    });
  });
  t.world.at(500, [&] {
    // Older requester: queued until 'younger' commits, then reads 7.
    t.client.read(older, t.host.id(), "a", [&](Result<std::int64_t> v) {
      ASSERT_TRUE(v.is_ok());
      older_read = v.value();
      t.client.commit(older, [](Status) {});
    });
  });
  t.world.at(5000, [&] { t.client2.commit(younger, [](Status) {}); });
  t.world.run();
  EXPECT_EQ(older_read, 7);
  EXPECT_EQ(t.world.metrics().value("txn.waits"), 1);
}

TEST(TxnIntegration, TwoPhaseCommitAcrossHosts) {
  TxnWorld t;
  const TxnId txn = t.client.begin();
  Status commit_status = Status::internal("unset");
  t.world.at(0, [&] {
    t.client.add(txn, t.host.id(), "a", -30, [&](Result<std::int64_t> v) {
      ASSERT_TRUE(v.is_ok());
      t.client.add(txn, t.host2.id(), "c", 30, [&](Result<std::int64_t> v2) {
        ASSERT_TRUE(v2.is_ok());
        t.client.commit(txn, [&](Status s) { commit_status = s; });
      });
    });
  });
  t.world.run();
  EXPECT_TRUE(commit_status.is_ok());
  EXPECT_EQ(t.host.peek("a"), 70);
  EXPECT_EQ(t.host2.peek("c"), 330);
  // 2PC traffic: prepare + vote + decision + ack per host.
  EXPECT_EQ(t.world.metrics().sent(net::MsgKind::kTxnPrepare), 2);
  EXPECT_EQ(t.world.metrics().sent(net::MsgKind::kTxnVote), 2);
  EXPECT_EQ(t.world.metrics().sent(net::MsgKind::kTxnDecision), 2);
  EXPECT_EQ(t.world.metrics().sent(net::MsgKind::kTxnDecisionAck), 2);
}

TEST(TxnIntegration, CreateIsUndoneOnAbort) {
  TxnWorld t;
  const TxnId txn = t.client.begin();
  t.world.at(0, [&] {
    t.client.create(txn, t.host.id(), "fresh", 5, [&](Status s) {
      ASSERT_TRUE(s.is_ok());
      t.client.abort(txn, [](Status) {});
    });
  });
  t.world.run();
  EXPECT_FALSE(t.host.peek("fresh").has_value());
}

TEST(TxnIntegration, SerializedIncrementsSumUp) {
  // Two clients each add 10 x +1 to "a" under separate transactions with
  // retry-on-conflict; the final value must reflect every increment.
  TxnWorld t;
  int done = 0;
  std::function<void(TxnClient&, int)> run_one = [&](TxnClient& c, int left) {
    if (left == 0) {
      ++done;
      return;
    }
    const TxnId txn = c.begin();
    c.add(txn, t.host.id(), "a", 1, [&, txn, left](Result<std::int64_t> v) {
      if (!v.is_ok()) {
        c.abort(txn, [&, left](Status) {
          // retry later
          t.world.simulator().schedule_after(
              700, [&, left] { run_one(c, left); });
        });
        return;
      }
      c.commit(txn, [&, left](Status s) {
        ASSERT_TRUE(s.is_ok());
        run_one(c, left - 1);
      });
    });
  };
  t.world.at(0, [&] { run_one(t.client, 10); });
  t.world.at(50, [&] { run_one(t.client2, 10); });
  t.world.run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(t.host.peek("a"), 120);
}

}  // namespace
}  // namespace caa::txn
