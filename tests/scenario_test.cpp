// Tests of the scenario library: the canonical constructions must
// reproduce the paper's numbers through the public API.
#include <gtest/gtest.h>

#include "scenario/scenarios.h"

namespace caa::scenario {
namespace {

TEST(FlatScenario, MatchesGeneralFormula) {
  for (const auto& [n, p, q] : {std::tuple{3, 1, 0}, std::tuple{5, 2, 2},
                                std::tuple{8, 3, 4}, std::tuple{6, 6, 0}}) {
    FlatOptions options;
    options.participants = n;
    options.raisers = p;
    options.nested = q;
    FlatScenario s(options);
    const RunStats stats = s.run();
    EXPECT_EQ(stats.messages, (n - 1) * (2 * p + 3 * q + 1))
        << "N=" << n << " P=" << p << " Q=" << q;
    EXPECT_TRUE(stats.all_handled);
  }
}

TEST(FlatScenario, NoRaisersNoMessages) {
  FlatOptions options;
  options.participants = 4;
  options.raisers = 0;
  FlatScenario s(options);
  const RunStats stats = s.run();
  EXPECT_EQ(stats.messages, 0);
  EXPECT_FALSE(stats.all_handled);
}

TEST(FlatScenario, CommitteeAddsConstantFactor) {
  auto run = [](std::uint32_t c) {
    FlatOptions options;
    options.participants = 6;
    options.raisers = 3;
    options.committee = c;
    FlatScenario s(options);
    return s.run().commits;
  };
  EXPECT_EQ(run(1), 5);
  EXPECT_EQ(run(3), 15);
}

TEST(NestedChainScenario, MessagesIndependentOfDepth) {
  std::int64_t previous = -1;
  for (int depth : {1, 3, 5}) {
    NestedChainOptions options;
    options.participants = 5;
    options.depth = depth;
    NestedChainScenario s(options);
    const RunStats stats = s.run();
    EXPECT_TRUE(stats.all_handled);
    if (previous >= 0) {
      EXPECT_EQ(stats.messages, previous);
    }
    previous = stats.messages;
  }
  // Q = N-1, P = 1: (N-1)(2+3(N-1)+1) = 4 * 15 = 60.
  EXPECT_EQ(previous, 60);
}

TEST(NestedChainScenario, LatencyGrowsWithAbortCost) {
  auto latency = [](sim::Time abort_cost) {
    NestedChainOptions options;
    options.participants = 3;
    options.depth = 4;
    options.abort_duration = abort_cost;
    NestedChainScenario s(options);
    return s.run().resolution_latency;
  };
  EXPECT_GT(latency(500), latency(0));
}

TEST(Figure4Scenario, ReproducesThePaperOutcomes) {
  Figure4Scenario s{Figure4Options{}};
  const auto outcome = s.run();
  EXPECT_TRUE(outcome.stats.all_handled);
  EXPECT_TRUE(outcome.belated_entry_refused);
  EXPECT_TRUE(outcome.o2_aborted_innermost_first);
  EXPECT_EQ(outcome.stats.messages, 37);  // see EXPERIMENTS.md E4 caveat
  EXPECT_EQ(outcome.stats.exceptions, 4);
  EXPECT_EQ(outcome.stats.have_nested, 9);
  EXPECT_EQ(outcome.stats.nested_completed, 9);
  EXPECT_EQ(outcome.stats.acks, 12);
  EXPECT_EQ(outcome.stats.commits, 3);
}

TEST(Figure4Scenario, WorksOverLossyLinks) {
  Figure4Options options;
  options.world.link = net::LinkParams::lossy(0.2);
  options.world.reliable_transport = true;
  options.world.seed = 77;
  Figure4Scenario s{options};
  const auto outcome = s.run();
  EXPECT_TRUE(outcome.stats.all_handled);
  EXPECT_TRUE(outcome.o2_aborted_innermost_first);
}

}  // namespace
}  // namespace caa::scenario
