// Relay-tree dissemination tests: deterministic tree shape, flat/tree
// behavioural equivalence (same resolved exceptions on the same seed),
// message savings at scale, squelch-backed idempotency, and self-healing
// when relays crash mid-broadcast.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "caa/world.h"
#include "fault/chaos.h"
#include "overlay/relay_tree.h"
#include "scenario/scenarios.h"

namespace caa {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;
using overlay::OverlayParams;
using overlay::RelayTree;

std::vector<ObjectId> make_members(int n, int first = 0) {
  std::vector<ObjectId> members;
  for (int i = 0; i < n; ++i) {
    members.emplace_back(static_cast<std::uint64_t>(first + i));
  }
  return members;
}

// ---- RelayTree unit tests -------------------------------------------------

TEST(RelayTree, HeapShapeRootAndNeighbors) {
  // 13 members, fanout 3: implicit heap positions, root = lowest member.
  const RelayTree tree(make_members(13), 3);
  EXPECT_EQ(tree.live_count(), 13u);
  EXPECT_EQ(tree.root(), ObjectId(0));
  EXPECT_EQ(tree.depth_of(ObjectId(0)), 0u);
  EXPECT_EQ(tree.depth_of(ObjectId(3)), 1u);
  EXPECT_EQ(tree.depth_of(ObjectId(4)), 2u);

  // Children of position i are 3i+1 .. 3i+3.
  EXPECT_EQ(tree.neighbors_of(ObjectId(0)),
            (std::vector<ObjectId>{ObjectId(1), ObjectId(2), ObjectId(3)}));
  EXPECT_EQ(tree.neighbors_of(ObjectId(1)),
            (std::vector<ObjectId>{ObjectId(0), ObjectId(4), ObjectId(5),
                                   ObjectId(6)}));
  // Position 12 is a leaf: parent only.
  EXPECT_EQ(tree.neighbors_of(ObjectId(12)),
            (std::vector<ObjectId>{ObjectId(3)}));
}

TEST(RelayTree, FingerprintIsDeterministic) {
  const RelayTree a(make_members(64), 8);
  const RelayTree b(make_members(64), 8);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Fanout and membership both feed the digest.
  const RelayTree narrower(make_members(64), 4);
  EXPECT_NE(a.fingerprint(), narrower.fingerprint());
  const RelayTree smaller(make_members(63), 8);
  EXPECT_NE(a.fingerprint(), smaller.fingerprint());
}

TEST(RelayTree, RebuildMatchesFreshTreeOverSurvivors) {
  // Healing is recomputation: excluding members must land on exactly the
  // tree a fresh construction over the survivors produces — including when
  // the root itself dies.
  RelayTree tree(make_members(20), 3);
  tree.rebuild({ObjectId(0), ObjectId(7), ObjectId(13)});
  std::vector<ObjectId> survivors;
  for (int i = 0; i < 20; ++i) {
    if (i == 0 || i == 7 || i == 13) continue;
    survivors.emplace_back(static_cast<std::uint64_t>(i));
  }
  const RelayTree fresh(survivors, 3);
  EXPECT_EQ(tree.fingerprint(), fresh.fingerprint());
  EXPECT_EQ(tree.root(), ObjectId(1));
  EXPECT_EQ(tree.live_count(), 17u);
  EXPECT_FALSE(tree.contains(ObjectId(7)));
  EXPECT_TRUE(tree.contains(ObjectId(8)));
}

TEST(RelayTree, NextHopRoutesEveryPair) {
  // Hop-by-hop forwarding along next_hop() must reach every target from
  // every source within the tree diameter.
  const int n = 23;
  const RelayTree tree(make_members(n), 3);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      ObjectId at(static_cast<std::uint64_t>(a));
      const ObjectId target(static_cast<std::uint64_t>(b));
      int hops = 0;
      while (at != target) {
        at = tree.next_hop(at, target);
        ASSERT_LE(++hops, n) << "routing loop " << a << " -> " << b;
      }
      EXPECT_LE(hops,
                static_cast<int>(tree.depth_of(ObjectId(
                    static_cast<std::uint64_t>(a))) +
                                 tree.depth_of(target)));
    }
  }
}

// ---- Flat/tree behavioural equivalence ------------------------------------

struct ModeRun {
  scenario::RunStats stats;
  std::uint64_t resolved = 0;
};

ModeRun run_flat_scenario(scenario::FlatOptions options) {
  scenario::FlatScenario s(options);
  ModeRun run;
  run.stats = s.run();
  run.resolved = scenario::resolved_checksum(s.objects());
  return run;
}

TEST(OverlayDissemination, TreeResolvesSameExceptionsAsFlat) {
  scenario::FlatOptions options;
  options.participants = 24;
  options.raisers = 3;
  options.committee = 2;

  scenario::FlatOptions flat = options;
  flat.world.overlay.mode = OverlayParams::Mode::kFlat;
  scenario::FlatOptions tree = options;
  tree.world.overlay.mode = OverlayParams::Mode::kTree;
  tree.world.overlay.fanout = 3;

  const ModeRun f = run_flat_scenario(flat);
  const ModeRun t = run_flat_scenario(tree);

  ASSERT_TRUE(f.stats.all_handled);
  ASSERT_TRUE(t.stats.all_handled);
  // WHAT resolved is identical; only the wire pattern differs.
  EXPECT_EQ(f.resolved, t.resolved);
  // Tree mode replaces every direct protocol fan-out with relay envelopes:
  // the five §4.4 kinds stop appearing on the wire at all.
  EXPECT_EQ(f.stats.relays, 0);
  EXPECT_GT(t.stats.relays, 0);
  EXPECT_EQ(t.stats.exceptions, 0);
  EXPECT_EQ(t.stats.acks, 0);
  EXPECT_EQ(t.stats.commits, 0);
  // No savings claim at this size: with few raisers and a small committee
  // the per-edge envelope waves cost more than the flat fan-out they
  // replace — which is exactly why kAuto keeps committees below
  // tree_threshold on the flat protocol. The scale win is asserted at
  // N=256 below.
}

TEST(OverlayDissemination, DegenerateFanoutStarStillMatchesFlat) {
  // fanout >= N collapses the tree to a root-centred star: the checksum
  // gate of the issue — tree mode at its degenerate extreme must resolve
  // exactly what flat mode resolves.
  scenario::FlatOptions options;
  options.participants = 16;
  options.raisers = 2;

  scenario::FlatOptions flat = options;
  flat.world.overlay.mode = OverlayParams::Mode::kFlat;
  scenario::FlatOptions star = options;
  star.world.overlay.mode = OverlayParams::Mode::kTree;
  star.world.overlay.fanout = 16;

  const ModeRun f = run_flat_scenario(flat);
  const ModeRun s = run_flat_scenario(star);
  ASSERT_TRUE(f.stats.all_handled);
  ASSERT_TRUE(s.stats.all_handled);
  EXPECT_EQ(f.resolved, s.resolved);
}

TEST(OverlayDissemination, AllMembersComputeIdenticalTree) {
  scenario::FlatOptions options;
  options.participants = 20;
  options.world.overlay.mode = OverlayParams::Mode::kTree;
  options.world.overlay.fanout = 4;
  scenario::FlatScenario s(options);

  const ActionInstanceId scope = s.instance().instance;
  const RelayTree* reference = s.objects()[0]->overlay().tree_of(scope);
  ASSERT_NE(reference, nullptr);
  EXPECT_EQ(reference->fanout(), 4u);
  EXPECT_EQ(reference->live_count(), 20u);
  for (const Participant* o : s.objects()) {
    const RelayTree* tree = o->overlay().tree_of(scope);
    ASSERT_NE(tree, nullptr);
    EXPECT_EQ(tree->fingerprint(), reference->fingerprint());
  }
  const scenario::RunStats stats = s.run();
  EXPECT_TRUE(stats.all_handled);
}

TEST(OverlayDissemination, TreeCutsAllRaiseTrafficAtN256) {
  // §4.4 case 3 (every member raises) is the quadratic worst case:
  // (N-1)(2N+1) messages flat. The tree turns each multicast into one
  // batched envelope per tree edge, so total envelopes must land well
  // under a tenth of the flat bill — the issue's N=1024 gate, checked
  // here at the largest size a unit test can afford.
  scenario::FlatOptions options;
  options.participants = 256;
  options.raisers = 256;

  scenario::FlatOptions flat = options;
  flat.world.overlay.mode = OverlayParams::Mode::kFlat;
  scenario::FlatOptions tree = options;
  tree.world.overlay.mode = OverlayParams::Mode::kTree;
  tree.world.overlay.fanout = 8;

  const ModeRun f = run_flat_scenario(flat);
  const ModeRun t = run_flat_scenario(tree);

  ASSERT_TRUE(f.stats.all_handled);
  ASSERT_TRUE(t.stats.all_handled);
  EXPECT_EQ(f.resolved, t.resolved);
  const std::int64_t n = 256;
  EXPECT_EQ(f.stats.messages, (n - 1) * (2 * n + 1));  // paper closed form
  EXPECT_LE(t.stats.messages * 10, f.stats.messages)
      << "tree sent " << t.stats.messages << " of flat "
      << f.stats.messages;
}

// ---- Paxos 2a batching over shared tree edges (route_multi) ---------------

TEST(OverlayDissemination, PaxosVoteWaveBatchesIntoSharedEnvelopes) {
  // Paxos Commit sends the SAME 2a vote to every acceptor. In tree mode
  // the host hands the whole target set to Disseminator::route_multi, which
  // carries the payload once per shared tree edge with the target list
  // alongside — instead of one routed copy per acceptor.
  scenario::FlatOptions options;
  options.participants = 24;
  options.raisers = 2;
  options.committee = 2;
  options.world.exit_protocol = exit::ExitKind::kPaxos;

  scenario::FlatOptions flat = options;
  flat.world.overlay.mode = OverlayParams::Mode::kFlat;
  scenario::FlatOptions tree = options;
  tree.world.overlay.mode = OverlayParams::Mode::kTree;
  tree.world.overlay.fanout = 3;

  scenario::FlatScenario f(flat);
  const scenario::RunStats fs = f.run();
  scenario::FlatScenario t(tree);
  const scenario::RunStats ts = t.run();

  ASSERT_TRUE(fs.all_handled);
  ASSERT_TRUE(ts.all_handled);
  // Batching is a wire-pattern change only: what resolves is identical.
  EXPECT_EQ(scenario::resolved_checksum(f.objects()),
            scenario::resolved_checksum(t.objects()));
  // Flat mode never groups (plain per-target sends).
  EXPECT_EQ(f.world().metrics().value("overlay.multi_groups"), 0);
  const std::int64_t groups =
      t.world().metrics().value("overlay.multi_groups");
  const std::int64_t targets =
      t.world().metrics().value("overlay.multi_targets");
  EXPECT_GT(groups, 0);
  // Strictly more targets than groups == at least one payload actually
  // shared a tree edge between multiple acceptors.
  EXPECT_GT(targets, groups) << "no 2a payload was shared across an edge";
}

// ---- Healing under relay crashes ------------------------------------------

ex::ExceptionTree crash_tree() {
  ex::ExceptionTree tree;
  tree.declare("app_fault");
  tree.declare("peer_crash");
  tree.freeze();
  return tree;
}

/// CrashWorld (caa_crash_test.cpp) with a configurable world: tree-mode
/// overlay plus the membership-service crash idiom.
struct TreeCrashWorld {
  World world;
  std::vector<Participant*> objects;
  const action::ActionDecl* decl = nullptr;
  const action::InstanceInfo* inst = nullptr;

  explicit TreeCrashWorld(WorldConfig config) : world(config) {}

  void build(int n, std::uint32_t committee = 1) {
    std::vector<ObjectId> ids;
    for (int i = 0; i < n; ++i) {
      objects.push_back(&world.add_participant("O" + std::to_string(i + 1)));
      ids.push_back(objects.back()->id());
    }
    decl = &world.actions().declare("A", crash_tree());
    inst = &world.actions().create_instance(*decl, ids);
    for (auto* o : objects) {
      ASSERT_TRUE(o->enter(
          inst->instance,
          EnterConfig::with(uniform_handlers(
                                decl->tree(),
                                ex::HandlerResult::recovered(100)))
              .committee(committee)));
    }
  }

  /// Crashes object `victim`: kills its node and informs the survivors
  /// (as a membership service would).
  void crash(int victim, sim::Time at) {
    world.at(at, [this, victim] {
      world.network().set_node_up(
          world.directory().address_of(objects[victim]->id()).node, false);
      for (int i = 0; i < static_cast<int>(objects.size()); ++i) {
        if (i == victim) continue;
        objects[i]->notify_peer_crashed(objects[victim]->id());
      }
    });
  }
};

WorldConfig tree_config(std::uint32_t fanout) {
  WorldConfig config;
  config.overlay.mode = OverlayParams::Mode::kTree;
  config.overlay.fanout = fanout;
  return config;
}

TEST(OverlayHealing, RelayCrashBeforeForwardingStillCoversSubtree) {
  // fanout 2 over 16 members: the raiser is the deepest leaf, so the
  // Exception climbs through interior relays. Object 2 (a child of the
  // root, with a whole subtree behind it) dies before the flood reaches
  // it; its orphans re-parent and must still receive the Exception from
  // their new parent's cache.
  TreeCrashWorld cw(tree_config(2));
  cw.build(16);
  cw.world.at(1000, [&] { cw.objects[15]->raise("app_fault"); });
  cw.crash(1, 1250);  // flood is still climbing: 15 -> 7 -> 3 -> 1 -> 0
  cw.world.run();

  for (int i = 0; i < 16; ++i) {
    if (i == 1) continue;
    ASSERT_EQ(cw.objects[i]->handled().size(), 1u) << "object " << i;
    EXPECT_EQ(cw.objects[i]->handled()[0].resolved,
              cw.decl->tree().find("app_fault"));
    EXPECT_FALSE(cw.objects[i]->in_action()) << "object " << i;
  }
  EXPECT_GT(cw.world.metrics().value("overlay.heals"), 0);
}

TEST(OverlayHealing, RelayCrashDuringAckWaveStillResolves) {
  // Crash an interior relay after it forwarded the Exception but while the
  // aggregated ACK wave is flowing back through it; the re-routed ACK
  // caches must still complete the round for everyone.
  TreeCrashWorld cw(tree_config(2));
  cw.build(16);
  cw.world.at(1000, [&] { cw.objects[15]->raise("app_fault"); });
  cw.crash(2, 1650);
  cw.world.run();

  for (int i = 0; i < 16; ++i) {
    if (i == 2) continue;
    ASSERT_EQ(cw.objects[i]->handled().size(), 1u) << "object " << i;
    EXPECT_FALSE(cw.objects[i]->in_action()) << "object " << i;
  }
  EXPECT_GT(cw.world.metrics().value("overlay.heals"), 0);
}

TEST(OverlayHealing, RelayCrashDuringPaxosVoteWaveStillExits) {
  // Batched 2a envelopes must not weaken healing: an interior relay dies
  // while the scope is resolving/exiting under Paxos Commit in tree mode.
  // Per-target route-cache entries back every MultiItem, so the existing
  // re-offer machinery re-routes each acceptor's share after the rebuild;
  // every survivor must still leave the action.
  WorldConfig config = tree_config(2);
  config.exit_protocol = exit::ExitKind::kPaxos;
  TreeCrashWorld cw(config);
  cw.build(16);
  cw.world.at(1000, [&] { cw.objects[15]->raise("app_fault"); });
  cw.crash(1, 1650);  // interior relay, child of the root
  cw.world.run();

  for (int i = 0; i < 16; ++i) {
    if (i == 1) continue;
    ASSERT_EQ(cw.objects[i]->handled().size(), 1u) << "object " << i;
    EXPECT_FALSE(cw.objects[i]->in_action()) << "object " << i;
  }
  EXPECT_GT(cw.world.metrics().value("overlay.multi_groups"), 0);
  EXPECT_GT(cw.world.metrics().value("overlay.heals"), 0);
}

TEST(OverlayHealing, CrashHeavyN64CommitteeSurvivorsAllResolve) {
  // The issue's N=64 crash-heavy shape: 64 members, fanout 4, committee 2,
  // three relays (two of them children of the root) dying at staggered
  // points of the same resolution. Every survivor must handle exactly one
  // exception and exit cleanly — duplicates from healing re-offers are
  // squelched, re-merged ACK bitmaps must not double-count.
  TreeCrashWorld cw(tree_config(4));
  cw.build(64, /*committee=*/2);
  cw.world.at(1000, [&] {
    cw.objects[0]->raise("app_fault");
    cw.objects[63]->raise("app_fault");
  });
  cw.crash(1, 1150);
  cw.crash(2, 1350);
  cw.crash(17, 1650);
  cw.world.run();

  for (int i = 0; i < 64; ++i) {
    if (i == 1 || i == 2 || i == 17) continue;
    ASSERT_EQ(cw.objects[i]->handled().size(), 1u) << "object " << i;
    EXPECT_EQ(cw.objects[i]->handled()[0].resolved,
              cw.decl->tree().find("app_fault"));
    EXPECT_FALSE(cw.objects[i]->in_action()) << "object " << i;
  }
  EXPECT_GT(cw.world.metrics().value("overlay.heals"), 0);
  EXPECT_GT(cw.world.metrics().value("overlay.envelopes"), 0);
}

TEST(OverlayHealing, CrashHeavyChaosCampaignCleanAtN64Tree) {
  // The generated-fault-plan analogue of the targeted crashes above: 50
  // crash-heavy plans against 64-member committees running entirely over
  // the relay tree (relays die and restart mid-broadcast per plan). Every
  // oracle must hold on every plan.
  fault::ChaosOptions options;
  options.plans = 50;
  options.mix = fault::FaultMix::kCrashHeavy;
  options.min_participants = 64;
  options.max_participants = 64;
  options.overlay.mode = OverlayParams::Mode::kTree;
  options.overlay.fanout = 8;
  const fault::ChaosReport report = fault::run_chaos_campaign(options);
  EXPECT_EQ(report.violations, 0u) << report.failure_report();
}

// ---- Observability --------------------------------------------------------

TEST(OverlayObservability, RelayHopsAppearOnCriticalPaths) {
  // Relayed deliveries must stay inside the cause DAG: the critical path
  // behind a tree-mode resolution crosses kRelay wire records, and
  // caa-inspect renders them by name.
  EXPECT_EQ(std::string(net::kind_name(net::MsgKind::kRelay)), "Relay");

  scenario::FlatOptions options;
  options.participants = 8;
  options.raisers = 2;
  options.world.overlay.mode = OverlayParams::Mode::kTree;
  options.world.overlay.fanout = 2;
  scenario::FlatScenario s(options);
  const scenario::RunStats stats = s.run();
  ASSERT_TRUE(stats.all_handled);

  const std::string report = s.world().critical_path_report();
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("Relay"), std::string::npos) << report;
}

}  // namespace
}  // namespace caa
