// Tests of the local exception contexts (§2.1/§2.3): termination vs
// resumption, covering handlers, propagation chains.
#include <gtest/gtest.h>

#include "ex/local_context.h"

namespace caa::ex {
namespace {

struct Fx {
  ExceptionTree tree;
  ExceptionId io, io_read, io_write, app;

  Fx() {
    io = tree.declare("io_error");
    io_read = tree.declare("io_read_error", io);
    io_write = tree.declare("io_write_error", io);
    app = tree.declare("app_error");
    tree.freeze();
  }
};

TEST(LocalContext, TerminationHandlerClosesBlock) {
  Fx f;
  LocalContextRunner r(f.tree);
  r.enter_context("main");
  r.enter_context("read_file");
  r.attach(f.io_read, [](ExceptionId) { return LocalOutcome::kHandled; });

  const auto result = r.raise(f.io_read);
  EXPECT_TRUE(result.handled);
  EXPECT_FALSE(result.resumed);
  EXPECT_EQ(result.context, "read_file");
  // Termination model: the handled block is gone; main survives.
  EXPECT_EQ(r.depth(), 1u);
  EXPECT_EQ(r.current(), "main");
}

TEST(LocalContext, ResumptionKeepsBlockOpen) {
  Fx f;
  LocalContextRunner r(f.tree);
  r.enter_context("driver", Model::kResumption);
  r.attach(f.io, [](ExceptionId) { return LocalOutcome::kHandled; });

  const auto result = r.raise(f.io_write);
  EXPECT_TRUE(result.handled);
  EXPECT_TRUE(result.resumed);
  EXPECT_EQ(r.depth(), 1u);  // the context survived
  EXPECT_EQ(r.current(), "driver");
}

TEST(LocalContext, CoveringHandlerCatchesDescendants) {
  Fx f;
  LocalContextRunner r(f.tree);
  r.enter_context("outer");
  r.attach(f.io, [](ExceptionId) { return LocalOutcome::kHandled; });
  const auto result = r.raise(f.io_read);
  EXPECT_TRUE(result.handled);
  EXPECT_EQ(result.handler_for, f.io);
}

TEST(LocalContext, PropagatesThroughUnhandledContexts) {
  Fx f;
  LocalContextRunner r(f.tree);
  r.enter_context("main");
  r.attach(f.io, [](ExceptionId) { return LocalOutcome::kHandled; });
  r.enter_context("parse");
  r.enter_context("read");

  const auto result = r.raise(f.io_read);
  EXPECT_TRUE(result.handled);
  EXPECT_EQ(result.context, "main");
  // The inner blocks were terminated on the way out, then main itself was
  // closed by its (termination-model) handler.
  EXPECT_EQ(result.unwound,
            (std::vector<std::string>{"read", "parse", "main"}));
  EXPECT_EQ(r.depth(), 0u);
}

TEST(LocalContext, HandlerMayDeclineAndPropagate) {
  Fx f;
  LocalContextRunner r(f.tree);
  int attempts = 0;
  r.enter_context("outer");
  r.attach(f.io, [&](ExceptionId) {
    ++attempts;
    return LocalOutcome::kHandled;
  });
  r.enter_context("inner");
  r.attach(f.io_read, [&](ExceptionId) {
    ++attempts;
    return LocalOutcome::kPropagate;  // "not able to recover"
  });
  const auto result = r.raise(f.io_read);
  EXPECT_TRUE(result.handled);
  EXPECT_EQ(result.context, "outer");
  EXPECT_EQ(attempts, 2);
}

TEST(LocalContext, UnhandledUnwindsEverything) {
  Fx f;
  LocalContextRunner r(f.tree);
  r.enter_context("a");
  r.enter_context("b");
  const auto result = r.raise(f.app);
  EXPECT_FALSE(result.handled);
  EXPECT_EQ(result.unwound, (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(r.depth(), 0u);
}

TEST(LocalContext, ExactHandlerBeatsCoveringOne) {
  Fx f;
  LocalContextRunner r(f.tree);
  r.enter_context("c");
  r.attach(f.io, [](ExceptionId) { return LocalOutcome::kHandled; });
  r.attach(f.io_read, [](ExceptionId) { return LocalOutcome::kHandled; });
  const auto result = r.raise(f.io_read);
  EXPECT_EQ(result.handler_for, f.io_read);
}

}  // namespace
}  // namespace caa::ex
