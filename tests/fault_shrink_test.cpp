// Counterexample shrinking, exercised on planted bugs: a structural
// predicate (a "bug" that needs exactly two of a big plan's events) must
// shrink to the minimal core deterministically, and a planted protocol
// failure through the real trial runner must produce the full repro kit —
// oracle summary, serialized plan that parses back, shrunk recipe, and a
// decodable flight-recorder dump.
#include <gtest/gtest.h>

#include "fault/chaos.h"
#include "fault/shrink.h"
#include "obs/flight_recorder.h"
#include "util/rng.h"

namespace caa::fault {
namespace {

// A 12-event haystack containing the two needles the planted bug needs:
// a crash of node 0 and a heavy drop burst.
FaultPlan haystack_plan() {
  FaultPlan plan;
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.a = 0;
  crash.at = 1500;
  FaultEvent heavy;
  heavy.kind = FaultKind::kDropBurst;
  heavy.a = 1;
  heavy.b = 2;
  heavy.at = 1000;
  heavy.until = 2000;
  heavy.permille = 800;
  plan.events.push_back(crash);
  for (int i = 0; i < 5; ++i) {
    FaultEvent spike;
    spike.kind = FaultKind::kLatencySpike;
    spike.a = 0;
    spike.b = static_cast<std::uint32_t>(1 + i % 3);
    spike.at = 900 + 100 * i;
    spike.until = spike.at + 400;
    spike.extra = 150;
    plan.events.push_back(spike);
  }
  plan.events.push_back(heavy);
  for (int i = 0; i < 5; ++i) {
    FaultEvent part;
    part.kind = FaultKind::kPartition;
    part.a = static_cast<std::uint32_t>(i % 3);
    part.b = 3;
    part.at = 2000 + 200 * i;
    part.until = part.at + 300;
    plan.events.push_back(part);
  }
  return plan;
}

// The planted bug: fails whenever a node-0 crash AND a >=500 permille
// burst are both present, regardless of everything else.
bool planted_bug(const FaultPlan& plan) {
  bool crash0 = false, heavy_burst = false;
  for (const FaultEvent& e : plan.events) {
    crash0 = crash0 || (e.kind == FaultKind::kCrash && e.a == 0);
    heavy_burst = heavy_burst ||
                  (e.kind == FaultKind::kDropBurst && e.permille >= 500);
  }
  return crash0 && heavy_burst;
}

TEST(Shrink, PlantedBugShrinksToItsMinimalCore) {
  const FaultPlan failing = haystack_plan();
  ASSERT_TRUE(planted_bug(failing));
  const ShrinkResult shrunk = shrink_plan(failing, planted_bug);
  EXPECT_TRUE(shrunk.minimal);
  EXPECT_LE(shrunk.plan.events.size(), 3u);
  EXPECT_TRUE(planted_bug(shrunk.plan));
  // Every survivor is load-bearing: removing any one breaks the repro.
  for (std::size_t i = 0; i < shrunk.plan.events.size(); ++i) {
    FaultPlan without = shrunk.plan;
    without.events.erase(without.events.begin() +
                         static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(planted_bug(without)) << "event " << i << " unnecessary";
  }
  // The minimal repro round-trips through the text format.
  const auto parsed = FaultPlan::parse(shrunk.plan.to_text());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), shrunk.plan);
}

TEST(Shrink, ShrinkingIsDeterministic) {
  const FaultPlan failing = haystack_plan();
  const ShrinkResult once = shrink_plan(failing, planted_bug);
  const ShrinkResult again = shrink_plan(failing, planted_bug);
  EXPECT_EQ(once.plan, again.plan);
  EXPECT_EQ(once.replays, again.replays);
}

TEST(Shrink, ReplayBudgetIsHonored) {
  ShrinkOptions options;
  options.max_replays = 3;
  std::size_t calls = 0;
  const ShrinkResult shrunk = shrink_plan(
      haystack_plan(),
      [&calls](const FaultPlan& plan) {
        ++calls;
        return planted_bug(plan);
      },
      options);
  EXPECT_LE(calls, options.max_replays);
  EXPECT_FALSE(shrunk.minimal);  // budget ran out before the fixpoint
  EXPECT_TRUE(planted_bug(shrunk.plan));
}

// A planted protocol failure end-to-end: a virtual-time deadline too tight
// for the scenario makes the quiescence invariant fail for every plan, so
// the campaign post-pass must shrink the plan, attach a ready-to-paste
// repro and write a flight-recorder dump that decodes.
TEST(Shrink, PlantedViolationProducesADecodableReproKit) {
  ChaosOptions options;
  options.seed = 5;
  options.plans = 2;
  options.threads = 1;
  // Past the resolution traffic (raises land at 1000..1500) so the flight
  // recorder has something to dump, but before the completions scheduled
  // at 6000+ — the quiescence invariant fails for every plan.
  options.deadline = 2500;
  options.dump_dir = ::testing::TempDir();
  const ChaosReport report = run_chaos_campaign(options);
  ASSERT_EQ(report.violations, options.plans);
  for (const run::WorldResult& world : report.campaign.worlds) {
    ASSERT_FALSE(world.ok);
    EXPECT_NE(world.error.find("not quiescent"), std::string::npos)
        << world.error;
    // The artifact is the plan, and it parses back.
    const auto parsed = FaultPlan::parse(world.artifact);
    ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
    // The post-pass attached the shrunk recipe...
    EXPECT_NE(world.repro.find("repro (plan shrunk"), std::string::npos)
        << world.repro;
    EXPECT_NE(world.repro.find("faultplan v1"), std::string::npos);
    // ...and a dump of the minimal repro's run that decodes.
    ASSERT_FALSE(world.recorder_dump_path.empty());
    const auto dump = obs::FlightRecorder::read_dump(world.recorder_dump_path);
    ASSERT_TRUE(dump.is_ok()) << dump.status().message();
    EXPECT_EQ(dump.value().seed, world.seed);
    EXPECT_GT(dump.value().records.size(), 0u);
  }
  // The failure report carries the whole kit for a human.
  const std::string failure_report = report.failure_report();
  EXPECT_NE(failure_report.find("repro (plan shrunk"), std::string::npos);
}

}  // namespace
}  // namespace caa::fault
