// Chaos-campaign throughput and robustness trajectory: every fault-mix
// profile at campaign scale.
//
// For each profile the full chaos pipeline runs — plan generation, world
// build, fault injection, oracle — and two things land in the perf record:
//
//   * violations per 10k plans — the robustness trajectory; 0 everywhere
//     is the steady state, and any regression is a reproducible protocol
//     bug (the bench exits 1 and prints the shrunk repro recipes);
//   * plans/sec and events/sec — how much chaos a second of wall time
//     buys, which is what bounds how hard CI can shake the protocol.
//
// The merged campaign checksum is recorded per profile; like every
// campaign it is bit-identical at any --threads value.
//
// Usage: bench_chaos [--json PATH] [--plans N] [--seed S] [--threads T]
//   --json PATH   output document (default ./BENCH_chaos.json)
//   --plans N     plans per profile (default 10000)
//   --seed S      campaign seed (default 42)
//   --threads T   worker threads (default 0 = hardware concurrency)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "fault/chaos.h"
#include "perf_json.h"
#include "run/thread_pool.h"
#include "util/hash.h"

int main(int argc, char** argv) {
  using namespace caa;
  using namespace caa::bench;

  std::string json_path = "BENCH_chaos.json";
  std::size_t plans = 10'000;
  std::uint64_t seed = 42;
  unsigned threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--plans") == 0 && i + 1 < argc) {
      plans = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "bench_chaos: unknown argument '%s'\n"
                   "usage: bench_chaos [--json PATH] [--plans N] [--seed S] "
                   "[--threads T]\n",
                   argv[i]);
      return 2;
    }
  }
  const unsigned effective_threads =
      threads != 0 ? threads : run::ThreadPool::default_threads();

  header("Chaos campaigns (" + std::to_string(plans) +
         " plans per profile, seed " + std::to_string(seed) + ", " +
         std::to_string(effective_threads) + " thread(s))");
  std::printf("%-14s %10s %14s %12s %12s  %s\n", "profile", "plans",
              "violations/10k", "plans/s", "events/s", "merged checksum");

  Json rows = Json::array();
  bool clean = true;
  for (const fault::FaultMix mix :
       {fault::FaultMix::kMixed, fault::FaultMix::kCrashHeavy,
        fault::FaultMix::kNetworkOnly, fault::FaultMix::kResolverHunt}) {
    fault::ChaosOptions options;
    options.seed = seed;
    options.plans = plans;
    options.threads = threads;
    options.mix = mix;
    const fault::ChaosReport report = run_chaos_campaign(options);
    const double per_10k =
        plans > 0 ? 1e4 * static_cast<double>(report.violations) /
                        static_cast<double>(plans)
                  : 0.0;
    const double plans_per_sec =
        report.campaign.wall_ms > 0.0
            ? 1e3 * static_cast<double>(plans) / report.campaign.wall_ms
            : 0.0;
    const double events_per_sec =
        report.campaign.wall_ms > 0.0
            ? 1e3 * static_cast<double>(report.campaign.total_events) /
                  report.campaign.wall_ms
            : 0.0;
    std::printf("%-14s %10zu %14.1f %12.0f %12.0f  %s\n",
                std::string(fault_mix_name(mix)).c_str(), plans, per_10k,
                plans_per_sec, events_per_sec,
                hex_digest(report.campaign.merged_checksum).c_str());
    if (!report.ok()) {
      clean = false;
      std::fprintf(stderr, "%s\n", report.failure_report().c_str());
    }
    rows.push(
        Json::object()
            .set("profile", Json::str(std::string(fault_mix_name(mix))))
            .set("plans", Json::num(static_cast<std::int64_t>(plans)))
            .set("violations",
                 Json::num(static_cast<std::int64_t>(report.violations)))
            .set("violations_per_10k_plans", Json::num(per_10k))
            .set("wall_ms", Json::num(report.campaign.wall_ms))
            .set("plans_per_sec", Json::num(plans_per_sec))
            .set("events_per_sec", Json::num(events_per_sec))
            .set("total_events", Json::num(report.campaign.total_events))
            .set("merged_checksum",
                 Json::str(hex_digest(report.campaign.merged_checksum))));
  }

  if (clean) {
    std::printf("=> 0 oracle violations across every profile\n");
  } else {
    std::fprintf(stderr,
                 "bench_chaos: oracle violations found (repro recipes "
                 "above)\n");
  }

  Json doc = bench_doc("bench_chaos", /*schema_version=*/1, effective_threads)
                 .set("seed", Json::num(static_cast<std::int64_t>(seed)))
                 .set("plans_per_profile",
                      Json::num(static_cast<std::int64_t>(plans)))
                 .set("profiles", std::move(rows));
  if (!doc.write_file(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return clean ? 0 : 1;
}
