// E8 — Figures 3 & 4: resolution across chains of nested actions.
//
// Builds a chain of nested actions of configurable depth over N objects
// (every object enters every level, except one outer-only raiser), raises
// an exception in the outermost action, and measures:
//   * resolution messages,
//   * recovery latency (raise -> last handler start), and how it grows
//     with nesting depth and abortion-handler cost — the §4.4 remark that
//     "the proposed algorithm may suffer some delays because of the
//     execution of abortion handlers in nested actions";
//   * innermost-first abortion is implicitly exercised on every run.
#include "bench_common.h"

namespace caa::bench {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

struct Outcome {
  std::int64_t messages = 0;
  sim::Time latency = 0;
};

Outcome run_depth(int n, int depth, sim::Time abort_duration) {
  World w;
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects.back()->id());
  }
  const auto& outer_decl = w.actions().declare("A0", ex::shapes::star(1));
  const auto& outer = w.actions().create_instance(outer_decl, ids);
  for (auto* o : objects) {
    const EnterConfig config = EnterConfig::with(uniform_handlers(
        outer_decl.tree(), ex::HandlerResult::recovered()));
    if (!o->enter(outer.instance, config)) std::abort();
  }
  // Objects 1..N-1 descend a chain of nested actions; object 0 stays at the
  // outer level and will raise.
  const action::InstanceInfo* parent = &outer;
  std::vector<ObjectId> nested_ids(ids.begin() + 1, ids.end());
  for (int level = 1; level <= depth; ++level) {
    const auto& decl = w.actions().declare("A" + std::to_string(level),
                                           ex::shapes::star(1));
    const auto& inst =
        w.actions().create_instance(decl, nested_ids, parent->instance);
    for (int i = 1; i < n; ++i) {
      const EnterConfig config =
          EnterConfig::with(
              uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))
              .abortion([abort_duration] {
                return ex::AbortResult::none(abort_duration);
              });
      if (!objects[i]->enter(inst.instance, config)) std::abort();
    }
    parent = &inst;
  }
  const sim::Time raise_at = 1000;
  w.at(raise_at, [&] { objects[0]->raise("s1"); });
  w.run();

  Outcome out;
  out.messages = w.metrics().resolution_messages();
  sim::Time last = raise_at;
  for (auto* o : objects) {
    for (const auto& h : o->handled()) last = std::max(last, h.at);
  }
  out.latency = last - raise_at;
  return out;
}

}  // namespace
}  // namespace caa::bench

int main() {
  using namespace caa::bench;
  header("E8 — nested chains: messages and latency vs nesting depth");
  std::printf("(N objects; N-1 of them inside a depth-D chain of nested "
              "actions;\n the remaining object raises in the outermost "
              "action)\n\n");
  std::printf("%4s %6s %12s %12s %14s %16s\n", "N", "depth", "messages",
              "formula", "latency(a=0)", "latency(a=500)");
  for (int n : {2, 4, 8, 16}) {
    for (int depth : {0, 1, 2, 4, 6}) {
      const Outcome cheap = run_depth(n, depth, /*abort=*/0);
      const Outcome costly = run_depth(n, depth, /*abort=*/500);
      // Messages: P=1 raiser; Q = N-1 nested objects when depth >= 1.
      const int q = depth > 0 ? n - 1 : 0;
      const std::int64_t formula =
          static_cast<std::int64_t>(n - 1) * (2 * 1 + 3 * q + 1);
      std::printf("%4d %6d %12lld %12lld %14lld %16lld\n", n, depth,
                  static_cast<long long>(cheap.messages),
                  static_cast<long long>(formula),
                  static_cast<long long>(cheap.latency),
                  static_cast<long long>(costly.latency));
    }
  }
  std::printf(
      "=> message count is independent of depth (HaveNested/NestedCompleted\n"
      "   are per-object, not per-level: (N-1)(2P+3Q+1) with Q=N-1), while\n"
      "   latency grows linearly with depth x abortion-handler cost — the\n"
      "   §4.4 caveat about abortion delays, reproduced.\n");
  return 0;
}
