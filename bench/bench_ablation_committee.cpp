// Ablation — resolver committee size (§4.4: "the algorithm can be easily
// extended to the use of a group of objects that are responsible for
// performing resolution and producing the commit messages. This only
// contributes a constant factor to its total complexity.")
//
// Sweeps committee size c and N: total messages should be the base
// (N-1)(2P+1) plus (c'-1)(N-1) extra Commit multicasts, where c' =
// min(c, P) — i.e. a CONSTANT FACTOR, never a change in the N-exponent.
// Also reports resolution latency: extra commits are concurrent, so
// latency is flat in c.
#include "bench_common.h"

namespace caa::bench {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

struct Out {
  std::int64_t messages = 0;
  std::int64_t commits = 0;
  sim::Time latency = 0;
};

Out run(int n, int p, std::uint32_t committee) {
  World w;
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects.back()->id());
  }
  const auto& decl = w.actions().declare(
      "A", ex::shapes::star(static_cast<std::size_t>(n)));
  const auto& inst = w.actions().create_instance(decl, ids);
  for (auto* o : objects) {
    const EnterConfig config =
        EnterConfig::with(
            uniform_handlers(decl.tree(), ex::HandlerResult::recovered()))
            .committee(committee);
    if (!o->enter(inst.instance, config)) std::abort();
  }
  const sim::Time raise_at = 1000;
  w.at(raise_at, [&] {
    for (int i = 0; i < p; ++i) {
      objects[i]->raise("s" + std::to_string(i + 1));
    }
  });
  w.run();
  Out out;
  out.messages = w.metrics().resolution_messages();
  out.commits = w.metrics().sent(net::MsgKind::kCommit);
  sim::Time last = raise_at;
  for (auto* o : objects) {
    for (const auto& h : o->handled()) last = std::max(last, h.at);
  }
  out.latency = last - raise_at;
  return out;
}

}  // namespace
}  // namespace caa::bench

int main() {
  using namespace caa::bench;
  header("Ablation — resolver committee size (crash-tolerant commit)");
  std::printf("(P = N/2 raisers; expected total = (N-1)(2P+1) + "
              "(min(c,P)-1)(N-1))\n\n");
  std::printf("%4s %4s %4s %10s %10s %10s %10s %8s\n", "N", "P", "c",
              "messages", "expected", "commits", "latency", "match");
  bool all = true;
  for (int n : {4, 8, 16}) {
    const int p = n / 2;
    for (std::uint32_t c : {1u, 2u, 3u, 4u}) {
      const Out out = run(n, p, c);
      const std::int64_t cc = std::min<std::int64_t>(c, p);
      const std::int64_t expected =
          static_cast<std::int64_t>(n - 1) * (2 * p + 1) +
          (cc - 1) * (n - 1);
      const bool match = out.messages == expected;
      all = all && match;
      std::printf("%4d %4d %4u %10lld %10lld %10lld %10lld %8s\n", n, p, c,
                  static_cast<long long>(out.messages),
                  static_cast<long long>(expected),
                  static_cast<long long>(out.commits),
                  static_cast<long long>(out.latency), match ? "yes" : "NO");
    }
  }
  std::printf("=> %s; the committee adds a constant factor (extra commit\n"
              "   multicasts), latency is unchanged — as §4.4 predicts.\n",
              all ? "all rows match" : "MISMATCH");
  return 0;
}
