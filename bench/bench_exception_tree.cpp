// E11 — micro-benchmark of the exception-tree resolution primitive (§3.2):
// resolve() = iterated LCA over the raised set, across tree shapes and
// sizes. Run-time cost matters because resolution sits on the recovery
// path of every exceptional CA action.
#include <benchmark/benchmark.h>

#include "ex/exception_tree.h"
#include "util/rng.h"

namespace {

using caa::ExceptionId;
using caa::Rng;
using caa::ex::ExceptionTree;

std::vector<ExceptionId> random_set(const ExceptionTree& tree,
                                    std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ExceptionId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(ExceptionId(
        static_cast<std::uint32_t>(rng.below(tree.size()))));
  }
  return out;
}

void BM_ResolveChain(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const ExceptionTree tree = caa::ex::shapes::chain(depth);
  const auto raised = random_set(tree, 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.resolve(raised));
  }
  state.SetComplexityN(static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_ResolveChain)->RangeMultiplier(4)->Range(8, 4096)->Complexity();

void BM_ResolveBalanced(benchmark::State& state) {
  const auto levels = static_cast<std::size_t>(state.range(0));
  const ExceptionTree tree = caa::ex::shapes::balanced_binary(levels);
  const auto raised = random_set(tree, 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.resolve(raised));
  }
}
BENCHMARK(BM_ResolveBalanced)->DenseRange(2, 12, 2);

void BM_ResolveStar(benchmark::State& state) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const ExceptionTree tree = caa::ex::shapes::star(leaves);
  const auto raised = random_set(tree, 8, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.resolve(raised));
  }
}
BENCHMARK(BM_ResolveStar)->RangeMultiplier(4)->Range(8, 4096);

void BM_ResolveSetSize(benchmark::State& state) {
  const ExceptionTree tree = caa::ex::shapes::balanced_binary(10);
  const auto raised =
      random_set(tree, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.resolve(raised));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ResolveSetSize)->RangeMultiplier(2)->Range(2, 256)->Complexity();

void BM_Covers(benchmark::State& state) {
  const ExceptionTree tree = caa::ex::shapes::chain(
      static_cast<std::size_t>(state.range(0)));
  const ExceptionId deep(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.covers(tree.root(), deep));
  }
}
BENCHMARK(BM_Covers)->RangeMultiplier(4)->Range(8, 4096);

void BM_DeclareTree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ExceptionTree tree = caa::ex::shapes::star(n);
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_DeclareTree)->RangeMultiplier(8)->Range(8, 4096);

}  // namespace

BENCHMARK_MAIN();
