// E12 — §4.5 implementation substrate: group communication cost.
//
// Measures (a) multicast fan-out over closed groups of size N on the
// simulated network, and (b) the reliable transport's retransmission
// overhead as channel loss grows — the machinery the paper assumes when it
// says "if a reliable multicast can be used, acknowledgement messages will
// no longer be necessary".
#include "bench_common.h"
#include "rt/runtime.h"

namespace caa::bench {
namespace {

class Sink final : public rt::ManagedObject {
 public:
  void on_message(ObjectId, net::MsgKind, const net::Bytes&) override {
    ++received_;
  }
  [[nodiscard]] int received() const { return received_; }

 private:
  int received_ = 0;
};

class Sender final : public rt::ManagedObject {
 public:
  void on_message(ObjectId, net::MsgKind, const net::Bytes&) override {}
  void multicast(const std::vector<ObjectId>& members, int times) {
    net::WireWriter w;
    w.str("payload-of-a-resolution-message");
    const net::Bytes payload = std::move(w).take();
    for (int i = 0; i < times; ++i) {
      for (ObjectId m : members) send(m, net::MsgKind::kAppData, payload);
    }
  }
};

}  // namespace
}  // namespace caa::bench

int main() {
  using namespace caa;
  using namespace caa::bench;

  header("E12a — multicast fan-out over closed groups (loss-free)");
  std::printf("%6s %10s %14s %18s\n", "N", "packets", "bytes on wire",
              "delivery span (ticks)");
  for (int n : {2, 4, 8, 16, 32, 64}) {
    World w;
    Sender sender;
    std::vector<std::unique_ptr<Sink>> sinks;
    w.attach(sender, "sender", w.add_node());
    std::vector<ObjectId> members;
    for (int i = 0; i < n; ++i) {
      sinks.push_back(std::make_unique<Sink>());
      w.attach(*sinks.back(), "sink" + std::to_string(i), w.add_node());
      members.push_back(sinks.back()->id());
    }
    w.groups().create(members);
    const sim::Time start = w.simulator().now();
    sender.multicast(members, 1);
    w.run();
    std::printf("%6d %10lld %14lld %18lld\n", n,
                static_cast<long long>(w.metrics().sent(net::MsgKind::kAppData)),
                static_cast<long long>(w.metrics().value("net.bytes_sent")),
                static_cast<long long>(w.simulator().now() - start));
  }

  header("E12b — reliable transport overhead vs channel loss");
  std::printf("(100 messages over one lossy channel; retransmit timer 500)\n");
  std::printf("%8s %12s %14s %12s\n", "loss", "delivered", "retransmits",
              "time (ticks)");
  for (double loss : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    WorldConfig config;
    config.link = net::LinkParams::lossy(loss);
    config.reliable_transport = true;
    World w(config);
    Sender sender;
    Sink sink;
    w.attach(sender, "sender", w.add_node());
    w.attach(sink, "sink", w.add_node());
    const sim::Time start = w.simulator().now();
    sender.multicast({sink.id()}, 100);
    w.run();
    std::printf("%8.2f %12d %14lld %12lld\n", loss, sink.received(),
                static_cast<long long>(
                    w.metrics().value("net.reliable.retransmit")),
                static_cast<long long>(w.simulator().now() - start));
  }
  std::printf("=> exactly-once FIFO delivery survives heavy transient loss; "
              "the cost\n   surfaces as retransmissions and latency, not "
              "lost protocol messages.\n");
  return 0;
}
