#!/usr/bin/env bash
# Builds the release preset, runs every bench, and collects JSON output at
# the repo root. The printed tables plus BENCH_*.json ARE the reproduction
# and perf record (summarized in EXPERIMENTS.md).
#
# Benches that support machine-readable output get --json <repo>/BENCH_<x>.json;
# campaign-aware benches additionally get --threads "$(nproc)" so the JSON
# headers record both the machine's nproc and the thread count actually used.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="$ROOT/build-release"
THREADS="$(nproc)"

cmake --preset release -S "$ROOT"
cmake --build --preset release -j"$(nproc)" --target \
  bench_msg_complexity bench_general_formula bench_cr_comparison \
  bench_nested_abort bench_recovery_strategies bench_nested_resolution \
  bench_exception_tree bench_group_comm bench_ablation_committee \
  bench_strategy_comparison bench_throughput bench_campaign

for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  case "$(basename "$bench")" in
    bench_throughput)
      "$bench" --json "$ROOT/BENCH_throughput.json" --threads "$THREADS"
      ;;
    bench_campaign)
      "$bench" --json "$ROOT/BENCH_campaign.json"
      ;;
    bench_recovery_strategies)
      "$bench" --json "$ROOT/BENCH_recovery_strategies.json" \
               --threads "$THREADS"
      ;;
    *)
      "$bench"
      ;;
  esac
done

echo
echo "JSON perf records at: $ROOT/BENCH_*.json"
