#!/usr/bin/env bash
# Builds the release preset, runs every bench, and collects JSON output at
# the repo root. The printed tables plus BENCH_*.json ARE the reproduction
# and perf record (summarized in EXPERIMENTS.md).
#
# Benches that support machine-readable output get --json <repo>/BENCH_<x>.json;
# campaign-aware benches additionally get --threads "$(nproc)" so the JSON
# headers record both the machine's nproc and the thread count actually used.
#
# With --dump-traces, the trace-aware benches additionally write
# flight-recorder dumps (*.caafr, decodable by caa-inspect) and
# critical-path summaries (*.critical_path.txt) into <repo>/traces/,
# next to the JSON outputs.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="$ROOT/build-release"
THREADS="$(nproc)"

TRACES_DIR=""
for arg in "$@"; do
  case "$arg" in
    --dump-traces)
      TRACES_DIR="$ROOT/traces"
      mkdir -p "$TRACES_DIR"
      ;;
    *)
      echo "run_all.sh: unknown argument '$arg' (supported: --dump-traces)" >&2
      exit 2
      ;;
  esac
done

cmake --preset release -S "$ROOT"
cmake --build --preset release -j"$(nproc)" --target \
  bench_msg_complexity bench_general_formula bench_cr_comparison \
  bench_nested_abort bench_recovery_strategies bench_nested_resolution \
  bench_exception_tree bench_group_comm bench_ablation_committee \
  bench_strategy_comparison bench_throughput bench_campaign bench_chaos

for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  case "$(basename "$bench")" in
    bench_throughput)
      "$bench" --json "$ROOT/BENCH_throughput.json" --threads "$THREADS" \
               ${TRACES_DIR:+--dump-traces "$TRACES_DIR"}
      ;;
    bench_campaign)
      "$bench" --json "$ROOT/BENCH_campaign.json" \
               ${TRACES_DIR:+--dump-traces "$TRACES_DIR"}
      ;;
    bench_recovery_strategies)
      "$bench" --json "$ROOT/BENCH_recovery_strategies.json" \
               --threads "$THREADS"
      ;;
    bench_chaos)
      "$bench" --json "$ROOT/BENCH_chaos.json" --threads "$THREADS"
      ;;
    *)
      "$bench"
      ;;
  esac
done

echo
echo "JSON perf records at: $ROOT/BENCH_*.json"
if [ -n "$TRACES_DIR" ]; then
  echo "flight-recorder traces at: $TRACES_DIR/ (decode with caa-inspect)"
fi
