#!/usr/bin/env bash
# Builds the release preset, runs every bench, and collects JSON output at
# the repo root. The printed tables plus BENCH_*.json ARE the reproduction
# and perf record (summarized in EXPERIMENTS.md).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="$ROOT/build-release"

cmake --preset release -S "$ROOT"
cmake --build --preset release -j"$(nproc)" --target \
  bench_msg_complexity bench_general_formula bench_cr_comparison \
  bench_nested_abort bench_recovery_strategies bench_nested_resolution \
  bench_exception_tree bench_group_comm bench_ablation_committee \
  bench_strategy_comparison bench_throughput

for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  case "$(basename "$bench")" in
    bench_throughput)
      "$bench" --json "$ROOT/BENCH_throughput.json"
      ;;
    *)
      "$bench"
      ;;
  esac
done

echo
echo "JSON perf records at: $ROOT/BENCH_*.json"
