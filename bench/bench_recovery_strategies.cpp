// E7 — Figure 2: forward vs backward error recovery over external atomic
// objects.
//
//   Forward (Fig. 2a): an exception is raised and resolved; the handlers
//   repair the atomic objects (put them into NEW valid states) and the
//   action COMMITS its associated transaction.
//
//   Backward (Fig. 2b): the attempt fails its acceptance test; the
//   associated transaction is ABORTED (before-images restored), every
//   participant rolls back to its checkpoint, and the action retries an
//   alternate; the successful attempt commits.
//
// We run a two-participant "transfer" action over two atomic accounts,
// inject faults with probability f, and compare completion latency and
// transaction abort counts. Correctness (money conserved) is checked on
// every trial.
//
// All 2 x 4 x 20 trials are independent worlds, so they run as one
// campaign sharded across `--threads` workers. Fault flags are drawn from
// Rng(42) per cell *before* jobs are submitted and trial seeds stay
// 1000+i, so the trial set is byte-for-byte the workload this bench has
// always run, at any thread count.
//
// A second axis of the same recovery story is HOW an action commits its
// exit once every member is done: the blocking leader barrier vs Gray &
// Lamport's Paxos Commit (non-blocking on any single crash). The "Exit
// protocols" section below puts both strategies through the §4.4
// message-count harness and identical chaos campaigns, emitting
// side-by-side messages / latency-percentile / violation rows.
//
// Usage: bench_recovery_strategies [--json PATH] [--threads T] [--plans N]
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/chaos.h"
#include "perf_json.h"
#include "run/campaign.h"
#include "txn/atomic_object.h"
#include "txn/txn_manager.h"
#include "util/rng.h"

namespace caa::bench {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

run::WorldResult run_trial(std::string name, bool forward, bool fault,
                           std::uint64_t seed) {
  WorldConfig wc;
  wc.seed = seed;
  World w(wc);
  auto& o1 = w.add_participant("O1");
  auto& o2 = w.add_participant("O2");
  txn::AtomicObjectHost host_a, host_b;
  txn::TxnClient client;
  w.attach(host_a, "bankA", w.add_node());
  w.attach(host_b, "bankB", w.add_node());
  w.attach(client, "txncli", w.add_node());
  host_a.put_initial("acctA", 1000);
  host_b.put_initial("acctB", 0);

  const auto& decl = w.actions().declare("transfer", ex::shapes::star(1));
  const auto& inst = w.actions().create_instance(decl, {o1.id(), o2.id()});

  TxnId current_txn;
  // Leader body: under a fresh transaction per attempt, move 100 from A to
  // B; a fault either raises (forward) or fails the acceptance test
  // (backward).
  bool acceptance_ok = true;
  ex::HandlerTable c1_handlers = uniform_handlers(
      decl.tree(), ex::HandlerResult::recovered(/*duration=*/1500));
  if (forward) {
    // The handler repairs the atomic objects into the intended new state
    // (fire-and-forget writes complete well within the handler duration).
    c1_handlers.set(decl.tree().find("s1"), [&](ExceptionId) {
      client.write(current_txn, host_a.id(), "acctA", 900, [](Status) {});
      client.write(current_txn, host_b.id(), "acctB", 100, [](Status) {});
      return ex::HandlerResult::recovered(/*duration=*/1500);
    });
  }
  auto c1_builder = EnterConfig::with(std::move(c1_handlers)).retries(4);
  c1_builder.body([&, forward, fault](std::uint32_t attempt) {
    current_txn = client.begin();
    const bool faulty = fault && attempt == 0;
    client.add(current_txn, host_a.id(), "acctA", -100,
               [&, faulty](Result<std::int64_t> r) {
      if (!r.is_ok()) return;
      // A faulty attempt corrupts the in-flight state (writes a wrong
      // amount) before the fault is detected.
      const std::int64_t delta = faulty ? 55 : 100;
      client.add(current_txn, host_b.id(), "acctB", delta,
                 [&, faulty](Result<std::int64_t> r2) {
        if (!r2.is_ok()) return;
        if (faulty && forward) {
          o1.raise("s1", "inconsistent transfer detected");
        } else if (faulty) {
          acceptance_ok = false;
          o1.complete(false);
        } else {
          acceptance_ok = true;
          o1.complete(true);
        }
      });
    });
  });
  const EnterConfig c1 =
      std::move(c1_builder)
          .on_commit([&] { client.commit(current_txn, [](Status) {}); })
          .on_abort([&] {
            if (client.active(current_txn)) {
              client.abort(current_txn, [](Status) {});
            }
          });
  const EnterConfig c2 =
      EnterConfig::with(uniform_handlers(
          decl.tree(), ex::HandlerResult::recovered(/*duration=*/1500)))
          .body([&o2](std::uint32_t) { o2.complete(); });

  const sim::Time start = w.simulator().now();
  if (!o1.enter(inst.instance, c1)) std::abort();
  if (!o2.enter(inst.instance, c2)) std::abort();
  run::WorldResult r =
      run::measure(std::move(name), w, [&w] { return w.run(); });

  r.values["completion"] = w.simulator().now() - start;
  r.values["txn_aborts"] = client.aborts();
  const auto a = host_a.peek("acctA");
  const auto b = host_b.peek("acctB");
  const bool state_ok = a.has_value() && b.has_value() && *a == 900 &&
                        *b == 100 && !o1.in_action() && !o2.in_action();
  r.values["state_ok"] = state_ok ? 1 : 0;
  return r;
}

// One §4.4 counting run under the chosen exit protocol: flat wire pattern
// (the closed forms count direct fan-out), plus the resolved-exception
// fingerprint so the table can assert both exits settle the same outcome.
struct ExitRun {
  RunResult stats;
  std::int64_t exit_messages = 0;  // Done/Leave + paxos ballots, not §4.4
  std::uint64_t resolved = 0;
};

ExitRun run_exit_scenario(int n, int p, int q, caa::exit::ExitKind kind) {
  scenario::FlatOptions options;
  options.participants = n;
  options.raisers = p;
  options.nested = q;
  options.world.overlay.mode = overlay::OverlayParams::Mode::kFlat;
  options.world.exit_protocol = kind;
  scenario::FlatScenario s(options);
  ExitRun run;
  run.stats = s.run();
  // The §4.4 five-kind total excludes exit traffic by construction; the
  // exit-commit cost is what separates the two protocols.
  const obs::Metrics& m = s.world().metrics();
  for (const net::MsgKind exit_kind :
       {net::MsgKind::kActionDone, net::MsgKind::kActionLeave,
        net::MsgKind::kActionLeaveAck, net::MsgKind::kPaxosPrepare,
        net::MsgKind::kPaxosPromise, net::MsgKind::kPaxosVote,
        net::MsgKind::kPaxosAccepted}) {
    run.exit_messages += m.sent(exit_kind);
  }
  run.resolved = scenario::resolved_checksum(s.objects());
  return run;
}

}  // namespace
}  // namespace caa::bench

int main(int argc, char** argv) {
  using namespace caa;
  using namespace caa::bench;

  std::string json_path = "BENCH_recovery_strategies.json";
  unsigned threads = 1;
  std::size_t plans = 10'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--plans") == 0 && i + 1 < argc) {
      plans = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "bench_recovery_strategies: unknown argument '%s'\n"
                   "usage: bench_recovery_strategies [--json PATH] "
                   "[--threads T] [--plans N]\n",
                   argv[i]);
      return 2;
    }
  }

  header("E7 — Figure 2: forward vs backward recovery over atomic objects");
  std::printf("(two-account transfer; fault corrupts the attempt; 20 trials "
              "per cell)\n\n");

  struct Cell {
    bool forward;
    double f;
  };
  std::vector<Cell> cells;
  for (const bool forward : {true, false}) {
    for (const double f : {0.0, 0.25, 0.5, 1.0}) cells.push_back({forward, f});
  }
  const int trials = 20;

  // One world job per trial, added cell-major. Fault flags are drawn here,
  // before any job runs, so the workload is fixed no matter how the pool
  // schedules it; seeds stay the historical 1000+i (not campaign-derived).
  run::Campaign campaign({.seed = 42, .threads = threads});
  for (const Cell& cell : cells) {
    Rng rng(42);
    for (int i = 0; i < trials; ++i) {
      const bool fault = rng.chance(cell.f);
      const std::string name = std::string(cell.forward ? "fwd" : "bwd") +
                               "_f" + std::to_string(cell.f) + "#" +
                               std::to_string(i);
      const bool forward = cell.forward;
      const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(i);
      campaign.add(name, [name, forward, fault, seed](
                             const run::WorldContext&) {
        return run_trial(name, forward, fault, seed);
      });
    }
  }
  const run::CampaignResult result = campaign.run();
  if (!result.all_ok()) {
    std::fprintf(stderr, "bench_recovery_strategies: trial failed: %s\n",
                 result.first_error().c_str());
    return 1;
  }

  std::printf("%12s %10s %16s %12s %10s\n", "strategy", "fault f",
              "mean completion", "txn aborts", "state ok");
  Json rows = Json::array();
  bool all_ok = true;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    sim::Time total = 0;
    std::int64_t aborts = 0;
    int ok = 0;
    for (int i = 0; i < trials; ++i) {
      const run::WorldResult& t =
          result.worlds[c * static_cast<std::size_t>(trials) +
                        static_cast<std::size_t>(i)];
      total += t.values.at("completion");
      aborts += t.values.at("txn_aborts");
      ok += static_cast<int>(t.values.at("state_ok"));
    }
    const double mean_completion = static_cast<double>(total) / trials;
    std::printf("%12s %10.2f %16.1f %12lld %9d/%d\n",
                cells[c].forward ? "forward" : "backward", cells[c].f,
                mean_completion, static_cast<long long>(aborts), ok, trials);
    if (ok != trials) all_ok = false;
    rows.push(Json::object()
                  .set("strategy",
                       Json::str(cells[c].forward ? "forward" : "backward"))
                  .set("fault_f", Json::num(cells[c].f))
                  .set("mean_completion", Json::num(mean_completion))
                  .set("txn_aborts", Json::num(aborts))
                  .set("state_ok", Json::num(std::int64_t{ok}))
                  .set("trials", Json::num(std::int64_t{trials})));
  }
  std::printf(
      "=> forward recovery commits the repaired state (no transaction\n"
      "   aborts); backward recovery aborts and re-executes, paying the\n"
      "   extra attempt. Both always leave the atomic objects consistent\n"
      "   (Figure 2's start/abort/commit discipline).\n");

  // -------------------------------------------------------------------
  // Exit protocols: blocking leader barrier vs non-blocking Paxos Commit.
  // -------------------------------------------------------------------
  header("Exit protocols — done-barrier vs Paxos Commit");
  std::printf("(§4.4 counting harness, flat wire pattern; both protocols "
              "must resolve\n identical exceptions on identical seeds)\n\n");
  std::printf("%4s %3s %3s %10s %13s %11s %10s %10s %9s\n", "N", "P", "Q",
              "§4.4 msgs", "exit barrier", "exit paxos", "lat barr",
              "lat paxos", "same res");

  struct MsgCell {
    int n, p, q;
  };
  const std::vector<MsgCell> msg_cells = {
      {2, 1, 0}, {4, 1, 0}, {8, 1, 0}, {8, 2, 2}, {16, 1, 0}, {16, 4, 4}};
  Json msg_rows = Json::array();
  for (const MsgCell& cell : msg_cells) {
    const ExitRun barrier =
        run_exit_scenario(cell.n, cell.p, cell.q, exit::ExitKind::kBarrier);
    const ExitRun paxos =
        run_exit_scenario(cell.n, cell.p, cell.q, exit::ExitKind::kPaxos);
    const bool same = barrier.resolved == paxos.resolved &&
                      barrier.stats.messages == paxos.stats.messages;
    std::printf("%4d %3d %3d %10lld %13lld %11lld %10lld %10lld %9s\n",
                cell.n, cell.p, cell.q,
                static_cast<long long>(barrier.stats.messages),
                static_cast<long long>(barrier.exit_messages),
                static_cast<long long>(paxos.exit_messages),
                static_cast<long long>(barrier.stats.resolution_latency),
                static_cast<long long>(paxos.stats.resolution_latency),
                same ? "yes" : "NO");
    if (!same || !barrier.stats.all_handled || !paxos.stats.all_handled) {
      all_ok = false;
    }
    msg_rows.push(
        Json::object()
            .set("participants", Json::num(std::int64_t{cell.n}))
            .set("raisers", Json::num(std::int64_t{cell.p}))
            .set("nested", Json::num(std::int64_t{cell.q}))
            .set("messages_resolution", Json::num(barrier.stats.messages))
            .set("exit_messages_barrier", Json::num(barrier.exit_messages))
            .set("exit_messages_paxos", Json::num(paxos.exit_messages))
            .set("latency_barrier",
                 Json::num(std::int64_t{barrier.stats.resolution_latency}))
            .set("latency_paxos",
                 Json::num(std::int64_t{paxos.stats.resolution_latency}))
            .set("resolved_equal", Json::boolean(same)));
  }
  std::printf(
      "=> the §4.4 resolution cost is identical by construction (the exit\n"
      "   layer never touches resolution traffic); Paxos Commit pays the\n"
      "   2b acceptor->leader reports the barrier never sends (plus\n"
      "   recovery ballots under faults) to stay non-blocking, and both\n"
      "   settle identical resolved exceptions.\n");

  // -------------------------------------------------------------------
  // Paxos 2a batching over the relay tree: route_multi carries one shared
  // payload per tree edge with the acceptor list alongside, instead of
  // one routed copy per acceptor.
  // -------------------------------------------------------------------
  std::printf("\nPaxos 2a/Prepare batching over the relay tree "
              "(Disseminator::route_multi):\n");
  std::printf("%4s %10s %12s %12s %14s %7s\n", "N", "envelopes", "2a groups",
              "2a targets", "copies saved", "same");
  Json multi_rows = Json::array();
  for (const int n : {16, 64, 256}) {
    scenario::FlatOptions options;
    options.participants = n;
    options.raisers = 1;
    options.world.overlay.mode = overlay::OverlayParams::Mode::kTree;
    options.world.overlay.fanout = 8;
    options.world.exit_protocol = exit::ExitKind::kPaxos;
    scenario::FlatScenario tree_paxos(options);
    const RunResult tr = tree_paxos.run();
    const obs::Metrics& tm = tree_paxos.world().metrics();
    const std::int64_t groups = tm.value("overlay.multi_groups");
    const std::int64_t targets = tm.value("overlay.multi_targets");
    // A flat run of the same cell pins the resolution fingerprint.
    const ExitRun flat_paxos =
        run_exit_scenario(n, 1, 0, exit::ExitKind::kPaxos);
    const bool same = tr.all_handled && flat_paxos.stats.all_handled &&
                      scenario::resolved_checksum(tree_paxos.objects()) ==
                          flat_paxos.resolved;
    if (!same || groups <= 0 || targets <= groups) all_ok = false;
    std::printf("%4d %10lld %12lld %12lld %14lld %7s\n", n,
                static_cast<long long>(tm.value("overlay.envelopes")),
                static_cast<long long>(groups),
                static_cast<long long>(targets),
                static_cast<long long>(targets - groups),
                same ? "yes" : "NO");
    multi_rows.push(Json::object()
                        .set("participants", Json::num(std::int64_t{n}))
                        .set("envelopes",
                             Json::num(tm.value("overlay.envelopes")))
                        .set("multi_groups", Json::num(groups))
                        .set("multi_targets", Json::num(targets))
                        .set("payload_copies_saved",
                             Json::num(targets - groups))
                        .set("resolved_equal", Json::boolean(same)));
  }
  std::printf(
      "=> every 2a/Prepare wave serializes its vote once per shared tree\n"
      "   edge (groups) instead of once per acceptor (targets); the gap is\n"
      "   the payload copies the batching removes from the wire.\n");

  // -------------------------------------------------------------------
  // Coordination avoidance: the census fast path vs the full exchange.
  // -------------------------------------------------------------------
  header("Coordination avoidance — census fast path vs the full exchange");
  std::printf(
      "(flat wire pattern; GATED: resolved checksums must be identical, and\n"
      " the commutative all-raise must cost <= 2N messages)\n\n");
  std::printf("%4s %3s %3s %10s %10s %9s %9s %9s %7s\n", "N", "P", "Q",
              "full msgs", "avoid", "lat full", "lat avoid", "fast/fb",
              "same");
  struct AvoidCell {
    int n, p, q;
  };
  const std::vector<AvoidCell> avoid_cells = {
      {4, 4, 0}, {8, 8, 0}, {16, 16, 0}, {8, 2, 2}, {16, 4, 4}};
  Json avoid_rows = Json::array();
  for (const AvoidCell& cell : avoid_cells) {
    const AvoidCompare c = run_avoid_compare(cell.n, cell.p, cell.q);
    const bool commutative = cell.q == 0 && cell.p == cell.n;
    bool row_ok = c.resolved_equal && c.full.all_handled &&
                  c.avoid.all_handled;
    if (commutative) {
      row_ok = row_ok && c.avoid.messages <= 2 * cell.n &&
               c.avoid.exceptions == 0 && c.avoid.acks == 0;
    }
    if (!row_ok) all_ok = false;
    char fastfb[24];
    std::snprintf(fastfb, sizeof fastfb, "%lld/%lld",
                  static_cast<long long>(c.fast_commits),
                  static_cast<long long>(c.fallbacks));
    std::printf("%4d %3d %3d %10lld %10lld %9lld %9lld %9s %7s\n", cell.n,
                cell.p, cell.q, static_cast<long long>(c.full.messages),
                static_cast<long long>(c.avoid.messages),
                static_cast<long long>(c.full.resolution_latency),
                static_cast<long long>(c.avoid.resolution_latency), fastfb,
                row_ok ? "yes" : "NO");
    avoid_rows.push(
        Json::object()
            .set("participants", Json::num(std::int64_t{cell.n}))
            .set("raisers", Json::num(std::int64_t{cell.p}))
            .set("nested", Json::num(std::int64_t{cell.q}))
            .set("messages_full", Json::num(c.full.messages))
            .set("messages_avoid", Json::num(c.avoid.messages))
            .set("latency_full",
                 Json::num(std::int64_t{c.full.resolution_latency}))
            .set("latency_avoid",
                 Json::num(std::int64_t{c.avoid.resolution_latency}))
            .set("fast_commits", Json::num(c.fast_commits))
            .set("fallbacks", Json::num(c.fallbacks))
            .set("resolved_equal", Json::boolean(c.resolved_equal)));
  }
  std::printf(
      "=> commutative raise sets commit in <= 2N messages; nested (busy)\n"
      "   members force the fallback, which replays into the untouched\n"
      "   full exchange — same resolution fingerprint in every cell.\n");

  std::printf("\nIdentical chaos campaigns per exit protocol (%zu plans per "
              "profile, seed 42):\n",
              plans);
  std::printf("%-14s %-8s %11s %10s %9s\n", "profile", "exit", "violations",
              "plans/s", "wall ms");
  Json chaos_rows = Json::array();
  for (const fault::FaultMix mix :
       {fault::FaultMix::kMixed, fault::FaultMix::kCrashHeavy,
        fault::FaultMix::kNetworkOnly, fault::FaultMix::kResolverHunt}) {
    for (const exit::ExitKind kind :
         {exit::ExitKind::kBarrier, exit::ExitKind::kPaxos}) {
      fault::ChaosOptions options;
      options.seed = 42;
      options.plans = plans;
      options.threads = threads;
      options.mix = mix;
      options.exit = kind;
      const fault::ChaosReport report = run_chaos_campaign(options);
      const double wall = report.campaign.wall_ms;
      const double per_s =
          wall > 0.0 ? 1e3 * static_cast<double>(plans) / wall : 0.0;
      std::printf("%-14s %-8s %11zu %10.0f %9.0f\n",
                  std::string(fault_mix_name(mix)).c_str(),
                  std::string(exit_kind_name(kind)).c_str(),
                  report.violations, per_s, wall);
      if (!report.ok()) {
        std::printf("%s", report.failure_report().c_str());
        all_ok = false;
      }
      chaos_rows.push(
          Json::object()
              .set("profile", Json::str(std::string(fault_mix_name(mix))))
              .set("exit", Json::str(std::string(exit_kind_name(kind))))
              .set("plans", Json::num(std::int64_t(plans)))
              .set("violations", Json::num(std::int64_t(report.violations)))
              .set("plans_per_sec", Json::num(per_s))
              .set("latency",
                   latency_percentiles(report.campaign.merged_metrics)));
    }
  }
  std::printf(
      "=> same plans, same seeds, two commit disciplines: the barrier\n"
      "   blocks on its leader (re-election replays the Done), Paxos\n"
      "   Commit stays live through leader assassination via recovery\n"
      "   ballots. Violations must be 0 for both.\n");

  std::printf("\nand the same campaigns with coordination avoidance ON "
              "(census fast path,\n crashes land mid-census):\n");
  std::printf("%-14s %11s %10s %9s\n", "profile", "violations", "plans/s",
              "wall ms");
  Json avoid_chaos_rows = Json::array();
  for (const fault::FaultMix mix :
       {fault::FaultMix::kMixed, fault::FaultMix::kCrashHeavy,
        fault::FaultMix::kNetworkOnly, fault::FaultMix::kResolverHunt}) {
    fault::ChaosOptions options;
    options.seed = 42;
    options.plans = plans;
    options.threads = threads;
    options.mix = mix;
    options.avoid = true;
    const fault::ChaosReport report = run_chaos_campaign(options);
    const double wall = report.campaign.wall_ms;
    const double per_s =
        wall > 0.0 ? 1e3 * static_cast<double>(plans) / wall : 0.0;
    std::printf("%-14s %11zu %10.0f %9.0f\n",
                std::string(fault_mix_name(mix)).c_str(), report.violations,
                per_s, wall);
    if (!report.ok()) {
      std::printf("%s", report.failure_report().c_str());
      all_ok = false;
    }
    avoid_chaos_rows.push(
        Json::object()
            .set("profile", Json::str(std::string(fault_mix_name(mix))))
            .set("plans", Json::num(std::int64_t(plans)))
            .set("violations", Json::num(std::int64_t(report.violations)))
            .set("plans_per_sec", Json::num(per_s))
            .set("latency",
                 latency_percentiles(report.campaign.merged_metrics)));
  }
  std::printf(
      "=> every oracle holds with the fast path in the line of fire;\n"
      "   fallback replays keep the protocol state indistinguishable from\n"
      "   an avoidance-off run.\n");

  Json doc = bench_doc("bench_recovery_strategies", /*schema_version=*/3,
                       result.threads_used)
                 .set("trials_per_cell", Json::num(std::int64_t{trials}))
                 .set("results", std::move(rows))
                 .set("exit_messages", std::move(msg_rows))
                 .set("exit_tree_batching", std::move(multi_rows))
                 .set("avoidance", std::move(avoid_rows))
                 .set("exit_chaos", std::move(chaos_rows))
                 .set("avoidance_chaos", std::move(avoid_chaos_rows));
  if (!doc.write_file(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return all_ok ? 0 : 1;
}
