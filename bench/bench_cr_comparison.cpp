// E5 — comparison with the Campbell–Randell 1986 algorithm and the
// Arche-style resolution function (§3.3, §4.4).
//
// Scenario A (worst case for CR): chain tree of depth N^2, object i only
// handling chain levels ≡ i (mod N); every object raises the deepest
// exception simultaneously. CR re-raises its way up the chain — O(N^3)
// messages — while the new algorithm needs (N-1)(2N+1) = O(N^2), because
// participants are required to handle every declared exception and the
// "third source" of exceptions does not exist (§3.3).
//
// Scenario B (common case): all raise distinct leaves of a star tree.
#include <cmath>

#include "bench_common.h"
#include "resolve/arche_resolver.h"
#include "resolve/cr_resolver.h"

namespace caa::bench {
namespace {

std::int64_t run_cr(int n, bool adversarial) {
  World w;
  std::vector<std::unique_ptr<resolve::CrParticipant>> objects;
  std::vector<ObjectId> ids;
  const std::size_t depth = adversarial ? static_cast<std::size_t>(n) * n
                                        : static_cast<std::size_t>(n);
  ex::ExceptionTree tree =
      adversarial ? ex::shapes::chain(depth) : ex::shapes::star(depth);
  for (int i = 0; i < n; ++i) {
    objects.push_back(std::make_unique<resolve::CrParticipant>());
    w.attach(*objects.back(), "C" + std::to_string(i + 1), w.add_node());
    ids.push_back(objects.back()->id());
  }
  for (int i = 0; i < n; ++i) {
    resolve::CrParticipant::Config config;
    config.members = ids;
    config.tree = &tree;
    if (adversarial) {
      for (std::size_t k = 1; k <= depth; ++k) {
        if (k % static_cast<std::size_t>(n) == static_cast<std::size_t>(i)) {
          config.handled.insert(tree.find("e" + std::to_string(k)));
        }
      }
    } else {
      for (std::uint32_t k = 0; k < tree.size(); ++k) {
        config.handled.insert(ExceptionId(k));
      }
    }
    config.handled.insert(tree.root());
    objects[i]->configure(std::move(config));
  }
  w.at(1000, [&] {
    for (int i = 0; i < n; ++i) {
      if (adversarial) {
        objects[i]->raise(tree.find("e" + std::to_string(depth)));
      } else {
        objects[i]->raise(tree.find("s" + std::to_string(i + 1)));
      }
    }
  });
  w.run();
  const obs::Metrics& m = w.metrics();
  return m.sent(net::MsgKind::kCrRaise) + m.sent(net::MsgKind::kCrAck) +
         m.sent(net::MsgKind::kCrCommit);
}

std::int64_t run_arche(int n) {
  World w;
  resolve::ArcheCoordinator coordinator;
  std::vector<std::unique_ptr<resolve::ArcheMember>> members;
  ex::ExceptionTree tree = ex::shapes::star(static_cast<std::size_t>(n));
  w.attach(coordinator, "coord", w.add_node());
  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    members.push_back(std::make_unique<resolve::ArcheMember>());
    w.attach(*members.back(), "m" + std::to_string(i + 1), w.add_node());
    ids.push_back(members.back()->id());
    members.back()->configure(coordinator.id());
  }
  resolve::ArcheCoordinator::Config config;
  config.members = ids;
  config.tree = &tree;
  coordinator.configure(std::move(config));
  w.at(1000, [&] {
    for (int i = 0; i < n; ++i) {
      members[i]->finish(tree.find("s" + std::to_string(i + 1)));
    }
  });
  w.run();
  return w.metrics().sent(net::MsgKind::kArcheReport) +
         w.metrics().sent(net::MsgKind::kArcheConcerted);
}

double slope(double x0, double y0, double x1, double y1) {
  return (std::log2(y1) - std::log2(y0)) / (std::log2(x1) - std::log2(x0));
}

}  // namespace
}  // namespace caa::bench

int main() {
  using namespace caa::bench;

  header("E5a — adversarial trees: CR O(N^3) vs new algorithm O(N^2)");
  std::printf("%6s %14s %14s %14s %9s\n", "N", "CR(messages)",
              "new(messages)", "new formula", "CR/new");
  std::int64_t prev_cr = 0, prev_new = 0;
  int prev_n = 0;
  double cr_slope = 0, new_slope = 0;
  for (int n : {2, 4, 8, 16, 24}) {
    const std::int64_t cr = run_cr(n, /*adversarial=*/true);
    const RunResult nw = run_flat_scenario(n, n, 0);
    const std::int64_t formula =
        static_cast<std::int64_t>(n - 1) * (2 * n + 1);
    std::printf("%6d %14lld %14lld %14lld %9.1f\n", n,
                static_cast<long long>(cr), static_cast<long long>(nw.messages),
                static_cast<long long>(formula),
                static_cast<double>(cr) / static_cast<double>(nw.messages));
    if (prev_n != 0) {
      cr_slope = slope(prev_n, static_cast<double>(prev_cr), n,
                       static_cast<double>(cr));
      new_slope = slope(prev_n, static_cast<double>(prev_new), n,
                        static_cast<double>(nw.messages));
    }
    prev_cr = cr;
    prev_new = nw.messages;
    prev_n = n;
  }
  std::printf("=> log-log slope at the tail: CR ~ N^%.2f, new ~ N^%.2f "
              "(paper: N^3 vs N^2)\n", cr_slope, new_slope);

  header("E5b — common case (all raise distinct leaves, full handlers)");
  std::printf("%6s %14s %14s %14s\n", "N", "CR(messages)", "new(messages)",
              "Arche(2N)");
  for (int n : {2, 4, 8, 16, 24}) {
    const std::int64_t cr = run_cr(n, /*adversarial=*/false);
    const RunResult nw = run_flat_scenario(n, n, 0);
    const std::int64_t arche = run_arche(n);
    std::printf("%6d %14lld %14lld %14lld\n", n, static_cast<long long>(cr),
                static_cast<long long>(nw.messages),
                static_cast<long long>(arche));
  }
  std::printf("=> Arche is cheapest but supports neither nested actions nor\n"
              "   cooperative concurrency (§4.4) — it needs a synchronous\n"
              "   multi-call and same-type objects.\n");
  return 0;
}
