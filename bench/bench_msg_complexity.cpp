// E1/E2/E3/E9/E10 — §4.4 message-complexity cases.
//
// Reproduces the paper's three closed-form counts:
//   case 1: one exception, no nested actions        -> 3(N-1)
//   case 2: one exception, all others nested        -> 3N(N-1)
//   case 3: all N raise simultaneously              -> (N-1)(2N+1)
// plus the "no overhead if an exception is not raised" claim and the
// §4.3 Example 1 trace counts.
#include "bench_common.h"

namespace caa::bench {
namespace {

void case_table(const char* title, int p_of_n(int), int q_of_n(int),
                std::int64_t formula(int)) {
  header(title);
  std::printf("%6s %6s %6s %12s %12s %7s\n", "N", "P", "Q", "measured",
              "formula", "match");
  bool all_match = true;
  for (int n : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48}) {
    const int p = p_of_n(n), q = q_of_n(n);
    const RunResult r = run_flat_scenario(n, p, q);
    const std::int64_t expect = formula(n);
    const bool match = r.messages == expect && r.all_handled;
    all_match = all_match && match;
    std::printf("%6d %6d %6d %12lld %12lld %7s\n", n, p, q,
                static_cast<long long>(r.messages),
                static_cast<long long>(expect), match ? "yes" : "NO");
  }
  std::printf("=> %s\n", all_match ? "exact match at every N"
                                   : "MISMATCH (see rows above)");
}

}  // namespace
}  // namespace caa::bench

int main() {
  using namespace caa::bench;

  header("E9 — §4.3 Example 1: three objects, two concurrent exceptions");
  {
    const RunResult r = run_flat_scenario(3, 2, 0);
    std::printf("Exception=%lld ACK=%lld Commit=%lld total=%lld "
                "(paper narrative: 4 Exceptions, 4 ACKs, 2 Commits = 10)\n",
                static_cast<long long>(r.exceptions),
                static_cast<long long>(r.acks),
                static_cast<long long>(r.commits),
                static_cast<long long>(r.messages));
  }

  case_table(
      "E1 — case 1: one exception, no nesting; paper: 3(N-1)",
      [](int) { return 1; }, [](int) { return 0; },
      [](int n) { return static_cast<std::int64_t>(3) * (n - 1); });

  case_table(
      "E2 — case 2: one exception, all other objects nested; paper: 3N(N-1)",
      [](int) { return 1; }, [](int n) { return n - 1; },
      [](int n) { return static_cast<std::int64_t>(3) * n * (n - 1); });

  case_table(
      "E3 — case 3: all N raise simultaneously; paper: (N-1)(2N+1)",
      [](int n) { return n; }, [](int) { return 0; },
      [](int n) { return static_cast<std::int64_t>(n - 1) * (2 * n + 1); });

  header(
      "E14 — case 3 over the relay tree (fanout 8): envelopes vs the flat "
      "closed form");
  {
    std::printf("%6s %14s %14s %10s %10s\n", "N", "flat (N-1)(2N+1)",
                "tree envelopes", "ratio", "handled");
    for (int n : {16, 32, 64, 128, 256}) {
      const RunResult r = run_tree_scenario(n, /*p=*/n, /*q=*/0);
      const std::int64_t flat =
          static_cast<std::int64_t>(n - 1) * (2 * n + 1);
      std::printf("%6d %14lld %14lld %9.1f%% %10s\n", n,
                  static_cast<long long>(flat),
                  static_cast<long long>(r.messages),
                  100.0 * static_cast<double>(r.messages) /
                      static_cast<double>(flat),
                  r.all_handled ? "yes" : "NO");
    }
    std::printf("=> batched tree envelopes flatten the quadratic term; the "
                "crossover versus flat sits near the kAuto threshold\n");
  }

  header("E10 — no overhead when no exception is raised (paper §4.4)");
  {
    std::printf("%6s %22s\n", "N", "resolution messages");
    for (int n : {2, 4, 8, 16, 32}) {
      const RunResult r = run_flat_scenario(n, /*p=*/0, /*q=*/0);
      std::printf("%6d %22lld\n", n, static_cast<long long>(r.messages));
    }
    std::printf("=> fault-free runs exchange zero resolution messages\n");
  }
  return 0;
}
