// E1/E2/E3/E9/E10/E14/E16 — §4.4 message-complexity cases.
//
// Reproduces the paper's three closed-form counts:
//   case 1: one exception, no nested actions        -> 3(N-1)
//   case 2: one exception, all others nested        -> 3N(N-1)
//   case 3: all N raise simultaneously              -> (N-1)(2N+1)
// plus the "no overhead if an exception is not raised" claim and the
// §4.3 Example 1 trace counts.
#include "bench_common.h"

namespace caa::bench {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

void case_table(const char* title, int p_of_n(int), int q_of_n(int),
                std::int64_t formula(int)) {
  header(title);
  std::printf("%6s %6s %6s %12s %12s %7s\n", "N", "P", "Q", "measured",
              "formula", "match");
  bool all_match = true;
  for (int n : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48}) {
    const int p = p_of_n(n), q = q_of_n(n);
    const RunResult r = run_flat_scenario(n, p, q);
    const std::int64_t expect = formula(n);
    const bool match = r.messages == expect && r.all_handled;
    all_match = all_match && match;
    std::printf("%6d %6d %6d %12lld %12lld %7s\n", n, p, q,
                static_cast<long long>(r.messages),
                static_cast<long long>(expect), match ? "yes" : "NO");
  }
  std::printf("=> %s\n", all_match ? "exact match at every N"
                                   : "MISMATCH (see rows above)");
}

/// The mixed commute/conflict workload of E16: "ea"/"eb" commute under
/// "cover", "solo" is its own cover. One member raises ea while another
/// raises solo — both locally fast-eligible, but the census sees the
/// cover mismatch and falls back to the full exchange.
struct MixedRun {
  scenario::RunStats stats;
  std::uint64_t resolved = 0;
  std::int64_t fast_commits = 0;
  std::int64_t fallbacks = 0;
};

MixedRun run_mixed_conflict(int n, bool avoid) {
  WorldConfig config;
  config.resolve_avoidance = avoid;
  config.overlay.mode = overlay::OverlayParams::Mode::kTree;
  config.overlay.fanout = 8;
  World w(config);
  std::vector<Participant*> objects;
  std::vector<ObjectId> ids;
  for (int i = 0; i < n; ++i) {
    objects.push_back(&w.add_participant("O" + std::to_string(i + 1)));
    ids.push_back(objects.back()->id());
  }
  ex::ExceptionTree tree;
  const auto cover = tree.declare("cover");
  tree.declare("ea", cover);
  tree.declare("eb", cover);
  tree.declare("solo");
  tree.freeze();
  const auto& decl = w.actions().declare("A", std::move(tree));
  const auto& inst = w.actions().create_instance(decl, ids);
  for (auto* o : objects) {
    if (!o->enter(inst.instance,
                  EnterConfig::with(uniform_handlers(
                      decl.tree(), ex::HandlerResult::recovered(100))))) {
      std::abort();
    }
  }
  const sim::Time raise_at = 1000;
  w.at(raise_at, [&] { objects[1]->raise("ea"); });
  w.at(raise_at, [&] { objects[2]->raise("solo"); });
  w.run();
  MixedRun run;
  run.stats = scenario::collect_stats(w, objects, raise_at);
  run.resolved = scenario::resolved_checksum(objects);
  run.fast_commits = w.metrics().value("resolve.fast_commits");
  run.fallbacks = w.metrics().value("resolve.fallbacks");
  return run;
}

}  // namespace
}  // namespace caa::bench

int main() {
  using namespace caa::bench;

  header("E9 — §4.3 Example 1: three objects, two concurrent exceptions");
  {
    const RunResult r = run_flat_scenario(3, 2, 0);
    std::printf("Exception=%lld ACK=%lld Commit=%lld total=%lld "
                "(paper narrative: 4 Exceptions, 4 ACKs, 2 Commits = 10)\n",
                static_cast<long long>(r.exceptions),
                static_cast<long long>(r.acks),
                static_cast<long long>(r.commits),
                static_cast<long long>(r.messages));
  }

  case_table(
      "E1 — case 1: one exception, no nesting; paper: 3(N-1)",
      [](int) { return 1; }, [](int) { return 0; },
      [](int n) { return static_cast<std::int64_t>(3) * (n - 1); });

  case_table(
      "E2 — case 2: one exception, all other objects nested; paper: 3N(N-1)",
      [](int) { return 1; }, [](int n) { return n - 1; },
      [](int n) { return static_cast<std::int64_t>(3) * n * (n - 1); });

  case_table(
      "E3 — case 3: all N raise simultaneously; paper: (N-1)(2N+1)",
      [](int n) { return n; }, [](int) { return 0; },
      [](int n) { return static_cast<std::int64_t>(n - 1) * (2 * n + 1); });

  header(
      "E14 — case 3 over the relay tree (fanout 8): envelopes vs the flat "
      "closed form");
  {
    std::printf("%6s %14s %14s %10s %10s\n", "N", "flat (N-1)(2N+1)",
                "tree envelopes", "ratio", "handled");
    for (int n : {16, 32, 64, 128, 256}) {
      const RunResult r = run_tree_scenario(n, /*p=*/n, /*q=*/0);
      const std::int64_t flat =
          static_cast<std::int64_t>(n - 1) * (2 * n + 1);
      std::printf("%6d %14lld %14lld %9.1f%% %10s\n", n,
                  static_cast<long long>(flat),
                  static_cast<long long>(r.messages),
                  100.0 * static_cast<double>(r.messages) /
                      static_cast<double>(flat),
                  r.all_handled ? "yes" : "NO");
    }
    std::printf("=> batched tree envelopes flatten the quadratic term; the "
                "crossover versus flat sits near the kAuto threshold\n");
  }

  bool gates_ok = true;

  header(
      "E16 — case 3 with coordination avoidance (flat): census fast path "
      "vs the full exchange");
  {
    // GATED: the commutative all-raise must cost <= 2N messages (P-1
    // census reports + N-1 commits), send ZERO Exception/ACK traffic, and
    // resolve the exact same exceptions as the full exchange.
    std::printf("%6s %12s %12s %8s %9s %9s %7s\n", "N", "full exch.",
                "avoidance", "bound", "Exc+ACK", "fast/fb", "same");
    for (int n : {2, 3, 4, 6, 8, 12, 16, 24, 32, 48}) {
      const AvoidCompare c = run_avoid_compare(n, /*p=*/n, /*q=*/0);
      const bool row_ok = c.resolved_equal && c.full.all_handled &&
                          c.avoid.all_handled &&
                          c.avoid.messages <= 2 * n &&
                          c.avoid.exceptions == 0 && c.avoid.acks == 0;
      gates_ok = gates_ok && row_ok;
      std::printf("%6d %12lld %12lld %8d %9lld %6lld/%-2lld %7s\n", n,
                  static_cast<long long>(c.full.messages),
                  static_cast<long long>(c.avoid.messages), 2 * n,
                  static_cast<long long>(c.avoid.exceptions + c.avoid.acks),
                  static_cast<long long>(c.fast_commits),
                  static_cast<long long>(c.fallbacks),
                  row_ok ? "yes" : "NO");
    }
    std::printf(
        "=> the census collapses the quadratic (N-1)(2N+1) exchange to a\n"
        "   linear report-and-commit wave; resolved checksums stay equal\n");
  }

  header(
      "E16 (tree) — coordination avoidance over the relay tree (fanout 8): "
      "all-raise and mixed commute/conflict");
  {
    // Messages are kRelay envelopes here (kFastCover rides the overlay
    // like every other resolution kind). The mixed workload conflicts by
    // construction, so avoidance pays the census and then falls back —
    // its cost must stay in the same ballpark, and the resolution must
    // stay identical either way.
    std::printf("%10s %6s %10s %10s %8s %9s %9s %7s\n", "workload", "N",
                "msgs off", "msgs on", "saved", "lat off", "lat on", "same");
    for (int n : {16, 256, 1024}) {
      const AvoidCompare c = run_avoid_compare(
          n, /*p=*/n, /*q=*/0, caa::overlay::OverlayParams::Mode::kTree);
      const bool row_ok = c.resolved_equal && c.full.all_handled &&
                          c.avoid.all_handled && c.fast_commits >= 1;
      gates_ok = gates_ok && row_ok;
      std::printf("%10s %6d %10lld %10lld %7.1f%% %9lld %9lld %7s\n",
                  "all-raise", n, static_cast<long long>(c.full.messages),
                  static_cast<long long>(c.avoid.messages),
                  100.0 * (1.0 - static_cast<double>(c.avoid.messages) /
                                     static_cast<double>(c.full.messages)),
                  static_cast<long long>(c.full.resolution_latency),
                  static_cast<long long>(c.avoid.resolution_latency),
                  row_ok ? "yes" : "NO");
    }
    for (int n : {16, 256, 1024}) {
      const MixedRun full = run_mixed_conflict(n, /*avoid=*/false);
      const MixedRun avoid = run_mixed_conflict(n, /*avoid=*/true);
      const bool row_ok = full.resolved == avoid.resolved &&
                          full.stats.all_handled && avoid.stats.all_handled &&
                          avoid.fallbacks >= 1 && avoid.fast_commits == 0;
      gates_ok = gates_ok && row_ok;
      std::printf("%10s %6d %10lld %10lld %7.1f%% %9lld %9lld %7s\n",
                  "mixed", n, static_cast<long long>(full.stats.messages),
                  static_cast<long long>(avoid.stats.messages),
                  100.0 * (1.0 - static_cast<double>(avoid.stats.messages) /
                                     static_cast<double>(full.stats.messages)),
                  static_cast<long long>(full.stats.resolution_latency),
                  static_cast<long long>(avoid.stats.resolution_latency),
                  row_ok ? "yes" : "NO");
    }
    std::printf(
        "=> commutative rounds keep the linear census cost even over the\n"
        "   tree; conflicting rounds fall back, paying the census plus the\n"
        "   full exchange (the avoidance wager), never a wrong answer\n");
  }

  header("E10 — no overhead when no exception is raised (paper §4.4)");
  {
    std::printf("%6s %22s\n", "N", "resolution messages");
    for (int n : {2, 4, 8, 16, 32}) {
      const RunResult r = run_flat_scenario(n, /*p=*/0, /*q=*/0);
      std::printf("%6d %22lld\n", n, static_cast<long long>(r.messages));
    }
    std::printf("=> fault-free runs exchange zero resolution messages\n");
  }
  if (!gates_ok) {
    std::fprintf(stderr,
                 "bench_msg_complexity: avoidance gate FAILED (see NO rows)\n");
  }
  return gates_ok ? 0 : 1;
}
