// Machine-readable benchmark output.
//
// Benches print human tables, but the perf *trajectory* across PRs needs a
// stable machine format: each bench can emit a `BENCH_<name>.json` at the
// repo root via this tiny JSON builder. No external JSON dependency — the
// values we emit (objects, arrays, strings, numbers) cover everything the
// harness needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace caa::bench {

/// A write-only JSON value. Build with the static constructors, compose
/// with set()/push(), render with dump(). Object keys keep insertion order
/// so emitted files diff cleanly across runs.
class Json {
 public:
  static Json object();
  static Json array();
  static Json str(std::string value);
  static Json num(double value);
  static Json num(std::int64_t value);
  static Json boolean(bool value);

  /// Adds a member to an object; CHECK-fails on non-objects.
  Json& set(std::string key, Json value);
  /// Appends an element to an array; CHECK-fails on non-arrays.
  Json& push(Json value);

  /// Renders with two-space indentation and a trailing newline.
  [[nodiscard]] std::string dump() const;

  /// dump() to a file; returns false (and prints to stderr) on I/O error.
  bool write_file(const std::string& path) const;

 private:
  enum class Kind { kObject, kArray, kString, kDouble, kInt, kBool };

  explicit Json(Kind kind) : kind_(kind) {}
  void render(std::string& out, int depth) const;

  Kind kind_;
  std::string string_;
  double double_ = 0.0;
  std::int64_t int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

/// Standard top-level header every BENCH_*.json starts from: bench name,
/// schema version, build type (release/debug), the machine's hardware
/// concurrency, and the worker-thread count the bench ran with. Keeping
/// these in the document makes perf rows comparable across machines and
/// across `--threads` settings.
[[nodiscard]] Json bench_doc(const std::string& bench,
                             std::int64_t schema_version, unsigned threads);

/// Percentile rows for every histogram in a (merged) metrics snapshot:
/// [{histogram, count, mean, p50, p95, p99, max}, ...] in name order.
/// Campaign merges are bucket-wise and commutative, so these rows are
/// bit-identical for any worker-thread count — benches pin that.
[[nodiscard]] Json latency_percentiles(const obs::MetricsSnapshot& snapshot);

}  // namespace caa::bench
