// Shared table printing for the benchmark harness; the scenario
// constructions themselves live in the library (src/scenario) so tests,
// benches and downstream experiments use identical setups.
//
// Every bench prints paper-claim vs measured side by side, so the output of
// `for b in build/bench/*; do $b; done` IS the reproduction record (also
// summarized in EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>

#include "scenario/scenarios.h"

namespace caa::bench {

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

using RunResult = scenario::RunStats;

/// §4.4 counting configuration: N participants, the first `p` raise
/// distinct exceptions simultaneously, the last `q` (disjoint) sit in
/// singleton nested actions. Pinned to the flat all-to-all wire pattern:
/// the closed forms being reproduced count direct fan-out messages, so
/// these tables must not silently flip to relay-tree mode past the kAuto
/// threshold.
inline RunResult run_flat_scenario(int n, int p, int q,
                                   sim::Time abort_duration = 0,
                                   sim::Time handler_duration = 0) {
  scenario::FlatOptions options;
  options.participants = n;
  options.raisers = p;
  options.nested = q;
  options.abort_duration = abort_duration;
  options.handler_duration = handler_duration;
  options.world.overlay.mode = overlay::OverlayParams::Mode::kFlat;
  scenario::FlatScenario s(options);
  return s.run();
}

/// The same configuration over the relay-tree overlay (src/overlay/):
/// every multicast and ACK rides batched kRelay envelopes instead of
/// direct sends, so RunStats.messages counts envelopes.
inline RunResult run_tree_scenario(int n, int p, int q,
                                   std::uint32_t fanout = 8) {
  scenario::FlatOptions options;
  options.participants = n;
  options.raisers = p;
  options.nested = q;
  options.world.overlay.mode = overlay::OverlayParams::Mode::kTree;
  options.world.overlay.fanout = fanout;
  scenario::FlatScenario s(options);
  return s.run();
}

/// The same §4.4 configuration run twice — full exchange vs coordination
/// avoidance (WorldConfig.resolve_avoidance) — with the resolved-exception
/// equality the fast path is gated on: identical fingerprints, or the row
/// is a failure regardless of any message savings.
struct AvoidCompare {
  RunResult full;
  RunResult avoid;
  std::int64_t fast_commits = 0;  // resolve.fast_commits in the avoid world
  std::int64_t fallbacks = 0;     // resolve.fallbacks in the avoid world
  bool resolved_equal = false;
};

inline AvoidCompare run_avoid_compare(
    int n, int p, int q,
    overlay::OverlayParams::Mode mode = overlay::OverlayParams::Mode::kFlat,
    std::uint32_t fanout = 8) {
  AvoidCompare c;
  std::uint64_t full_resolved = 0;
  std::uint64_t avoid_resolved = 0;
  auto one = [&](bool avoid, std::uint64_t& resolved) {
    scenario::FlatOptions options;
    options.participants = n;
    options.raisers = p;
    options.nested = q;
    options.world.overlay.mode = mode;
    options.world.overlay.fanout = fanout;
    options.world.resolve_avoidance = avoid;
    scenario::FlatScenario s(options);
    const RunResult r = s.run();
    resolved = scenario::resolved_checksum(s.objects());
    if (avoid) {
      c.fast_commits = s.world().metrics().value("resolve.fast_commits");
      c.fallbacks = s.world().metrics().value("resolve.fallbacks");
    }
    return r;
  };
  c.full = one(false, full_resolved);
  c.avoid = one(true, avoid_resolved);
  c.resolved_equal = full_resolved == avoid_resolved;
  return c;
}

}  // namespace caa::bench
