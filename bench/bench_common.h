// Shared table printing for the benchmark harness; the scenario
// constructions themselves live in the library (src/scenario) so tests,
// benches and downstream experiments use identical setups.
//
// Every bench prints paper-claim vs measured side by side, so the output of
// `for b in build/bench/*; do $b; done` IS the reproduction record (also
// summarized in EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>

#include "scenario/scenarios.h"

namespace caa::bench {

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

using RunResult = scenario::RunStats;

/// §4.4 counting configuration: N participants, the first `p` raise
/// distinct exceptions simultaneously, the last `q` (disjoint) sit in
/// singleton nested actions. Pinned to the flat all-to-all wire pattern:
/// the closed forms being reproduced count direct fan-out messages, so
/// these tables must not silently flip to relay-tree mode past the kAuto
/// threshold.
inline RunResult run_flat_scenario(int n, int p, int q,
                                   sim::Time abort_duration = 0,
                                   sim::Time handler_duration = 0) {
  scenario::FlatOptions options;
  options.participants = n;
  options.raisers = p;
  options.nested = q;
  options.abort_duration = abort_duration;
  options.handler_duration = handler_duration;
  options.world.overlay.mode = overlay::OverlayParams::Mode::kFlat;
  scenario::FlatScenario s(options);
  return s.run();
}

/// The same configuration over the relay-tree overlay (src/overlay/):
/// every multicast and ACK rides batched kRelay envelopes instead of
/// direct sends, so RunStats.messages counts envelopes.
inline RunResult run_tree_scenario(int n, int p, int q,
                                   std::uint32_t fanout = 8) {
  scenario::FlatOptions options;
  options.participants = n;
  options.raisers = p;
  options.nested = q;
  options.world.overlay.mode = overlay::OverlayParams::Mode::kTree;
  options.world.overlay.fanout = fanout;
  scenario::FlatScenario s(options);
  return s.run();
}

}  // namespace caa::bench
