// E6 — Figure 1: two methods of treating a nested action when an exception
// is raised in the containing action.
//
//   (a) WAIT  — the resolution is deferred until the nested action
//               completes (its execution is "invisible and indivisible").
//   (b) ABORT — an abortion exception is raised in the nested action's
//               participants; abortion handlers run, then resolution
//               proceeds (the method the paper adopts and we implement).
//
// We measure recovery latency (exception raised -> every participant's
// handler started) while sweeping how much work the nested action still
// has left, and show the belated-participant case where method (a) waits
// forever (§2.2: "other processes in the nested action would wait forever").
#include "bench_common.h"
#include "util/rng.h"
#include "util/stats.h"

namespace caa::bench {
namespace {

using action::EnterConfig;
using action::Participant;
using action::uniform_handlers;

struct NestedScenario {
  World world;
  std::vector<Participant*> objects;
  const action::InstanceInfo* outer = nullptr;
  const action::InstanceInfo* nested = nullptr;
  const action::ActionDecl* outer_decl = nullptr;
  const action::ActionDecl* nested_decl = nullptr;

  /// 3 objects in the outer action; objects 1 and 2 in a nested action.
  void build(sim::Time abort_duration) {
    for (int i = 0; i < 3; ++i) {
      objects.push_back(&world.add_participant("O" + std::to_string(i + 1)));
    }
    outer_decl = &world.actions().declare("A1", ex::shapes::star(3));
    nested_decl = &world.actions().declare("A2", ex::shapes::star(1));
    outer = &world.actions().create_instance(
        *outer_decl, {objects[0]->id(), objects[1]->id(), objects[2]->id()});
    nested = &world.actions().create_instance(
        *nested_decl, {objects[1]->id(), objects[2]->id()}, outer->instance);
    for (auto* o : objects) {
      const EnterConfig config = EnterConfig::with(uniform_handlers(
          outer_decl->tree(), ex::HandlerResult::recovered()));
      if (!o->enter(outer->instance, config)) std::abort();
    }
    for (int i = 1; i < 3; ++i) {
      const EnterConfig config =
          EnterConfig::with(uniform_handlers(nested_decl->tree(),
                                             ex::HandlerResult::recovered()))
              .abortion([abort_duration] {
                return ex::AbortResult::none(abort_duration);
              });
      if (!objects[i]->enter(nested->instance, config)) std::abort();
    }
  }

  sim::Time last_outer_handler() const {
    sim::Time last = 0;
    for (auto* o : objects) {
      for (const auto& h : o->handled()) {
        if (h.instance == outer->instance) last = std::max(last, h.at);
      }
    }
    return last;
  }
};

/// Method (b): raise at t=1000 while the nested action still has
/// `remaining` ticks of work; the implementation aborts it immediately.
sim::Time run_abort_method(sim::Time remaining, sim::Time abort_duration) {
  NestedScenario s;
  s.build(abort_duration);
  const sim::Time raise_at = 1000;
  // The nested participants would complete at raise_at + remaining; the
  // abortion pre-empts that work.
  s.world.at(raise_at + remaining, [&] {
    for (int i = 1; i < 3; ++i) {
      if (s.objects[i]->in_action() &&
          s.objects[i]->active_instance() == s.nested->instance) {
        s.objects[i]->complete();
      }
    }
  });
  s.world.at(raise_at, [&] { s.objects[0]->raise("s1"); });
  s.world.run();
  return s.last_outer_handler() - raise_at;
}

/// Method (a): the raiser waits for the nested action to complete before
/// starting the resolution (the paper's Figure 1(a) semantics).
sim::Time run_wait_method(sim::Time remaining) {
  NestedScenario s;
  s.build(0);
  const sim::Time raise_at = 1000;
  // Nested work finishes at raise_at + remaining; the exit barrier then
  // needs a couple of message hops before the container is clean.
  s.world.at(raise_at + remaining, [&] {
    for (int i = 1; i < 3; ++i) {
      if (s.objects[i]->in_action() &&
          s.objects[i]->active_instance() == s.nested->instance) {
        s.objects[i]->complete();
      }
    }
  });
  // Model of (a): O1 defers its raise until the nested action has left.
  std::function<void()> raise_when_clean = [&] {
    const bool nested_done = !s.objects[1]->in_action() ||
                             s.objects[1]->active_instance() ==
                                 s.outer->instance;
    const bool nested_done2 = !s.objects[2]->in_action() ||
                              s.objects[2]->active_instance() ==
                                  s.outer->instance;
    if (nested_done && nested_done2) {
      s.objects[0]->raise("s1");
      return;
    }
    s.world.simulator().schedule_after(50, raise_when_clean);
  };
  s.world.at(raise_at, raise_when_clean);
  s.world.run();
  return s.last_outer_handler() - raise_at;
}

}  // namespace
}  // namespace caa::bench

int main() {
  using namespace caa;
  using namespace caa::bench;
  header("E6 — Figure 1: waiting for vs aborting a nested action");
  std::printf("(recovery latency in ticks from raise to last handler start;\n"
              " link latency 100/hop, abortion handler 200 ticks)\n\n");
  std::printf("%18s %14s %14s %9s\n", "nested work left", "(a) wait",
              "(b) abort", "speedup");
  for (sim::Time remaining : {0, 500, 1000, 2000, 5000, 10000, 50000}) {
    const sim::Time wait = run_wait_method(remaining);
    const sim::Time abort = run_abort_method(remaining, /*abort=*/200);
    std::printf("%18lld %14lld %14lld %8.1fx\n",
                static_cast<long long>(remaining),
                static_cast<long long>(wait), static_cast<long long>(abort),
                static_cast<double>(wait) / static_cast<double>(abort));
  }

  std::printf("\nBelated participant (a process expected in the nested "
              "action never arrives):\n");
  {
    // Method (a) would wait forever; method (b) recovers.
    NestedScenario s;
    s.build(/*abort_duration=*/200);
    // Nested participants never complete (they wait for a belated peer).
    s.world.at(1000, [&] { s.objects[0]->raise("s1"); });
    s.world.run();
    std::printf("  (a) wait : NEVER (nested action cannot complete)\n");
    std::printf("  (b) abort: %lld ticks\n",
                static_cast<long long>(s.last_outer_handler() - 1000));
  }
  std::printf("=> matches the paper's argument for aborting (§2.2, Fig. 1b): "
              "bounded,\n   predictable recovery; waiting is unbounded and "
              "deadlocks on belated\n   participants.\n");

  // Predictability (§2.2: "for real-time systems it seems to be more
  // predictable to abort the nested action than to wait for its
  // completion"): over a random mix of nested workloads, the abort method's
  // recovery latency is a constant, the wait method's follows the workload.
  std::printf("\nPredictability over 200 random workloads (nested work left "
              "~ U[0, 20000]):\n");
  std::printf("%10s %10s %10s %10s %10s\n", "method", "mean", "stddev",
              "p99", "max");
  caa::Rng rng(2026);
  caa::Samples wait_samples, abort_samples;
  for (int i = 0; i < 200; ++i) {
    const auto remaining = static_cast<sim::Time>(rng.below(20000));
    wait_samples.add(static_cast<double>(run_wait_method(remaining)));
    abort_samples.add(
        static_cast<double>(run_abort_method(remaining, /*abort=*/200)));
  }
  std::printf("%10s %10.0f %10.0f %10.0f %10.0f\n", "(a) wait",
              wait_samples.mean(), wait_samples.stddev(),
              wait_samples.percentile(99), wait_samples.max());
  std::printf("%10s %10.0f %10.0f %10.0f %10.0f\n", "(b) abort",
              abort_samples.mean(), abort_samples.stddev(),
              abort_samples.percentile(99), abort_samples.max());
  std::printf("=> abort: zero variance (deterministic recovery path); wait: "
              "stddev tracks\n   the workload spread — the §2.2 "
              "predictability claim, quantified.\n");
  return 0;
}
