#include "perf_json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <thread>

#include "util/check.h"

namespace caa::bench {

Json Json::object() { return Json(Kind::kObject); }
Json Json::array() { return Json(Kind::kArray); }

Json Json::str(std::string value) {
  Json j(Kind::kString);
  j.string_ = std::move(value);
  return j;
}

Json Json::num(double value) {
  Json j(Kind::kDouble);
  j.double_ = value;
  return j;
}

Json Json::num(std::int64_t value) {
  Json j(Kind::kInt);
  j.int_ = value;
  return j;
}

Json Json::boolean(bool value) {
  Json j(Kind::kBool);
  j.bool_ = value;
  return j;
}

Json& Json::set(std::string key, Json value) {
  CAA_CHECK_MSG(kind_ == Kind::kObject, "set() on non-object JSON value");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  CAA_CHECK_MSG(kind_ == Kind::kArray, "push() on non-array JSON value");
  elements_.push_back(std::move(value));
  return *this;
}

namespace {

void render_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
}

}  // namespace

void Json::render(std::string& out, int depth) const {
  switch (kind_) {
    case Kind::kString:
      render_string(out, string_);
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, int_);
      out += buf;
      break;
    }
    case Kind::kDouble: {
      char buf[40];
      if (std::isfinite(double_)) {
        // Fixed precision keeps diffs readable; rates don't need 17 digits.
        std::snprintf(buf, sizeof(buf), "%.3f", double_);
      } else {
        std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
      }
      out += buf;
      break;
    }
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(out, depth + 1);
        render_string(out, members_[i].first);
        out += ": ";
        members_[i].second.render(out, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        indent(out, depth + 1);
        elements_[i].render(out, depth + 1);
        if (i + 1 < elements_.size()) out += ',';
        out += '\n';
      }
      indent(out, depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  render(out, 0);
  out += '\n';
  return out;
}

bool Json::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_json: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string text = dump();
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "perf_json: short write to %s\n", path.c_str());
  return ok;
}

Json bench_doc(const std::string& bench, std::int64_t schema_version,
               unsigned threads) {
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return Json::object()
      .set("bench", Json::str(bench))
      .set("schema_version", Json::num(schema_version))
      .set("build_type", Json::str(build_type))
      .set("nproc", Json::num(static_cast<std::int64_t>(hw == 0 ? 1 : hw)))
      .set("threads", Json::num(static_cast<std::int64_t>(threads)));
}

Json latency_percentiles(const obs::MetricsSnapshot& snapshot) {
  Json rows = Json::array();
  for (const auto& [name, h] : snapshot.histograms) {
    rows.push(Json::object()
                  .set("histogram", Json::str(name))
                  .set("count", Json::num(h.count))
                  .set("mean", Json::num(h.mean()))
                  .set("p50", Json::num(h.quantile_bound(0.50)))
                  .set("p95", Json::num(h.quantile_bound(0.95)))
                  .set("p99", Json::num(h.quantile_bound(0.99)))
                  .set("max", Json::num(h.max)));
  }
  return rows;
}

}  // namespace caa::bench
