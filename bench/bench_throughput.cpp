// Simulator-core throughput: events/sec and protocol messages/sec.
//
// Unlike the §4.4 benches (which reproduce paper *claims*), this bench
// tracks the *implementation*: how fast the event loop, network accounting
// and resolution machinery execute. It sweeps the flat and nested-chain
// scenarios across N and emits BENCH_throughput.json so successive PRs
// record a perf trajectory.
//
// The sweep runs through run::Campaign: every (config, repetition) pair is
// one independent world job, sharded across `--threads` workers. World
// seeds stay at the WorldConfig default (42) — NOT the campaign-derived
// seed — so the per-config `checksum` field stays comparable with every
// earlier PR's BENCH_throughput.json. A `scaling` section re-runs the
// sweep at threads = 1, 2, 4, nproc and records wall time plus the merged
// campaign checksum, which must be identical for every thread count.
//
// The `checksum` field fingerprints the run's observable behaviour (all
// counters + final virtual time + events fired). An optimization PR must
// leave every checksum unchanged: same protocol, faster core.
//
// Usage: bench_throughput [--json PATH] [--only SUBSTR] [--reps K]
//                         [--threads T] [--dump-traces DIR]
//   --json PATH    where to write the JSON document (default
//                  ./BENCH_throughput.json)
//   --only SUBSTR  run only configs whose name contains SUBSTR (profiling
//                  aid; the JSON then covers just those configs)
//   --reps K       repetitions per config (default 3; min wall time wins)
//   --threads T    campaign worker threads (default 1; 0 = nproc)
//   --dump-traces DIR  write per-config flight-recorder dumps
//                  (<config>.caafr) and critical-path summaries
//                  (<config>.critical_path.txt) into DIR
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "perf_json.h"
#include "run/campaign.h"
#include "run/thread_pool.h"
#include "util/hash.h"

namespace caa::bench {
namespace {

struct Config {
  std::string name;    // e.g. "flat_n256"
  std::string family;  // "flat" | "nested" | "tree"
  int participants;
};

/// World job for one config. Seeds are deliberately left at the
/// WorldConfig default so checksums reproduce the committed perf record.
/// `recorder` toggles the flight recorder for the A/B overhead rows.
/// The flat and nested families pin overlay mode kFlat: their checksums
/// predate the relay tree and must not flip when N crosses the kAuto
/// threshold. The tree family is the same flat scenario over batched
/// kRelay envelopes, so the flat_nX / tree_nX row pairs read side by side.
/// Telemetry window for the sweep worlds. Sampling rides the simulator
/// clock and schedules nothing, so arming it must not move any checksum —
/// the committed per-config checksums are the proof.
constexpr sim::Time kTelemetryWindow = 500;

run::WorldResult run_config(const Config& config, bool recorder = true) {
  if (config.family == "flat" || config.family == "tree") {
    scenario::FlatOptions options;
    options.participants = config.participants;
    options.raisers = 2;
    options.world.flight_recorder = recorder;
    options.world.telemetry.window = kTelemetryWindow;
    options.world.overlay.mode = config.family == "tree"
                                     ? overlay::OverlayParams::Mode::kTree
                                     : overlay::OverlayParams::Mode::kFlat;
    scenario::FlatScenario s(options);
    return run::measure(config.name, s.world(),
                        [&s] { return s.world().run(); });
  }
  scenario::NestedChainOptions options;
  options.participants = config.participants;
  options.depth = 3;
  options.world.flight_recorder = recorder;
  options.world.telemetry.window = kTelemetryWindow;
  options.world.overlay.mode = overlay::OverlayParams::Mode::kFlat;
  scenario::NestedChainScenario s(options);
  return run::measure(config.name, s.world(),
                      [&s] { return s.world().run(); });
}

/// Re-runs one config with the recorder on and writes its black box plus
/// the extracted critical paths next to the JSON outputs.
bool dump_config_trace(const Config& config, const std::string& dir) {
  const std::string base = dir + "/" + config.name;
  if (config.family == "flat" || config.family == "tree") {
    scenario::FlatOptions options;
    options.participants = config.participants;
    options.raisers = 2;
    options.world.overlay.mode = config.family == "tree"
                                     ? overlay::OverlayParams::Mode::kTree
                                     : overlay::OverlayParams::Mode::kFlat;
    scenario::FlatScenario s(options);
    s.run();
    if (!s.world().write_recorder_dump(base + ".caafr")) return false;
    std::ofstream out(base + ".critical_path.txt", std::ios::binary);
    out << s.world().critical_path_report();
    return out.good();
  }
  scenario::NestedChainOptions options;
  options.participants = config.participants;
  options.depth = 3;
  options.world.overlay.mode = overlay::OverlayParams::Mode::kFlat;
  scenario::NestedChainScenario s(options);
  s.run();
  if (!s.world().write_recorder_dump(base + ".caafr")) return false;
  std::ofstream out(base + ".critical_path.txt", std::ios::binary);
  out << s.world().critical_path_report();
  return out.good();
}

/// One campaign over `configs` (reps jobs per config) at `threads` workers.
run::CampaignResult sweep(const std::vector<Config>& configs, int reps,
                          unsigned threads) {
  run::Campaign campaign({.seed = 42, .threads = threads});
  for (const Config& config : configs) {
    for (int rep = 0; rep < reps; ++rep) {
      campaign.add(config.name + "#" + std::to_string(rep),
                   [&config](const run::WorldContext&) {
                     return run_config(config);
                   });
    }
  }
  return campaign.run();
}

}  // namespace
}  // namespace caa::bench

int main(int argc, char** argv) {
  using namespace caa;
  using namespace caa::bench;

  std::string json_path = "BENCH_throughput.json";
  std::string only;
  std::string dump_dir;
  int repetitions = 3;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      repetitions = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--dump-traces") == 0 && i + 1 < argc) {
      dump_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "bench_throughput: unknown argument '%s'\n"
                   "usage: bench_throughput [--json PATH] [--only SUBSTR] "
                   "[--reps K] [--threads T] [--dump-traces DIR]\n",
                   argv[i]);
      return 2;
    }
  }

  std::vector<Config> configs;
  for (const int n : {64, 128, 256, 512, 1024}) {
    configs.push_back({"flat_n" + std::to_string(n), "flat", n});
  }
  for (const int n : {64, 128, 256, 512, 1024}) {
    configs.push_back({"nested_n" + std::to_string(n), "nested", n});
  }
  for (const int n : {256, 1024, 4096}) {
    configs.push_back({"tree_n" + std::to_string(n), "tree", n});
  }
  if (!only.empty()) {
    std::erase_if(configs, [&](const Config& c) {
      return c.name.find(only) == std::string::npos;
    });
    if (configs.empty()) {
      std::fprintf(stderr,
                   "bench_throughput: --only '%s' matches no config\n",
                   only.c_str());
      return 2;
    }
  }

  header(
      "Simulator-core throughput (flat: P=2 raisers; nested: depth 3; "
      "tree: flat over relay envelopes)");
  std::printf("%-14s %10s %10s %9s %12s %12s %10s  %s\n", "config", "events",
              "msgs", "msgs/N", "events/s", "msgs/s", "wall ms", "checksum");

  const run::CampaignResult campaign = sweep(configs, repetitions, threads);
  if (!campaign.all_ok()) {
    std::fprintf(stderr, "bench_throughput: world failed: %s\n",
                 campaign.first_error().c_str());
    return 1;
  }

  Json results = Json::array();
  bool checksums_stable = true;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const Config& config = configs[c];
    // Jobs were added config-major: reps consecutive worlds per config.
    const run::WorldResult* best = nullptr;
    for (int rep = 0; rep < repetitions; ++rep) {
      const run::WorldResult& m =
          campaign.worlds[c * static_cast<std::size_t>(repetitions) +
                          static_cast<std::size_t>(rep)];
      if (best == nullptr) {
        best = &m;
      } else {
        // Identical work every repetition, or the bench itself is broken.
        if (m.checksum != best->checksum || m.events != best->events) {
          checksums_stable = false;
        }
        if (m.wall_ms < best->wall_ms) best = &m;
      }
    }
    const double events_per_sec =
        best->wall_ms > 0.0
            ? 1e3 * static_cast<double>(best->events) / best->wall_ms
            : 0.0;
    const double messages_per_sec =
        best->wall_ms > 0.0
            ? 1e3 * static_cast<double>(best->messages) / best->wall_ms
            : 0.0;
    // Per-participant load: totals hide that O(N^2) protocols overload
    // every member linearly in N, which is the quantity the relay tree
    // flattens.
    const double messages_per_participant =
        static_cast<double>(best->messages) /
        static_cast<double>(config.participants);
    const std::string checksum = hex_digest(best->checksum);
    std::printf("%-14s %10lld %10lld %9.1f %12.0f %12.0f %10.3f  %s\n",
                config.name.c_str(), static_cast<long long>(best->events),
                static_cast<long long>(best->messages),
                messages_per_participant, events_per_sec, messages_per_sec,
                best->wall_ms, checksum.c_str());

    // The full counter snapshot rides along so downstream tooling can diff
    // behaviour between runs without re-deriving it from the checksum.
    Json metrics = Json::object();
    for (const auto& [name, value] : best->metrics.counters) {
      metrics.set(name, Json::num(value));
    }
    // Per-window peaks from the virtual-time sampler: how *hot* the run got,
    // which end-of-run totals cannot show. Deterministic (virtual-time
    // windows), so the --compare gate can diff them across PRs.
    const obs::TimeSeriesTable& ts = best->timeseries;
    Json telemetry =
        Json::object()
            .set("window", Json::num(static_cast<std::int64_t>(ts.window)))
            .set("windows",
                 Json::num(static_cast<std::int64_t>(ts.windows.size())))
            .set("peak_sim_queue_depth",
                 Json::num(ts.peak_of("sim.queue_depth")))
            .set("peak_net_in_flight", Json::num(ts.peak_of("net.in_flight")))
            .set("peak_resolve_outstanding_acks",
                 Json::num(ts.peak_of("resolve.outstanding_acks")))
            .set("peak_overlay_outbox_backlog",
                 Json::num(ts.peak_of("overlay.outbox_backlog")))
            .set("peak_caa_open_scopes",
                 Json::num(ts.peak_of("caa.open_scopes")));
    results.push(
        Json::object()
            .set("bench", Json::str("bench_throughput"))
            .set("config", Json::str(config.name))
            .set("family", Json::str(config.family))
            .set("participants", Json::num(std::int64_t{config.participants}))
            .set("events", Json::num(best->events))
            .set("events_per_sec", Json::num(events_per_sec))
            .set("messages", Json::num(best->messages))
            .set("messages_per_participant", Json::num(messages_per_participant))
            .set("messages_per_sec", Json::num(messages_per_sec))
            .set("wall_ms", Json::num(best->wall_ms))
            .set("sim_time", Json::num(static_cast<std::int64_t>(best->sim_time)))
            .set("checksum", Json::str(checksum))
            .set("telemetry", std::move(telemetry))
            .set("metrics", std::move(metrics)));
  }

  if (!checksums_stable) {
    std::fprintf(stderr,
                 "bench_throughput: nondeterministic run detected — "
                 "checksums differ across repetitions\n");
    return 1;
  }

  // Flat-vs-tree dissemination at the §4.4 worst case (every member
  // raises): the quantity the relay tree exists for. Flat is measured
  // where affordable and otherwise taken from the paper's exact closed
  // form (N-1)(2N+1), which bench_msg_complexity verifies measured==
  // formula across N. Two gates are enforced here, not just reported:
  // the degenerate fanout>=N tree must resolve exactly what flat mode
  // resolves (same seed), and at N=1024 tree envelopes must stay within
  // 10% of the flat message bill.
  struct DissemMeasurement {
    std::int64_t messages = 0;
    std::uint64_t resolved = 0;
    bool all_handled = false;
  };
  const auto run_dissemination = [](int n, overlay::OverlayParams::Mode mode,
                                    std::uint32_t fanout) {
    scenario::FlatOptions options;
    options.participants = n;
    options.raisers = n;
    options.world.overlay.mode = mode;
    options.world.overlay.fanout = fanout;
    options.world.flight_recorder = false;  // keep the N=1024 worlds lean
    scenario::FlatScenario s(options);
    DissemMeasurement m;
    const scenario::RunStats stats = s.run();
    m.messages = stats.messages;
    m.all_handled = stats.all_handled;
    m.resolved = scenario::resolved_checksum(s.objects());
    return m;
  };
  const auto flat_closed_form = [](std::int64_t n) {
    return (n - 1) * (2 * n + 1);
  };

  std::printf("\n%-6s %14s %14s %9s %9s %9s  %s\n", "N", "flat msgs",
              "tree msgs", "flat/N", "tree/N", "ratio", "source");
  Json dissemination = Json::array();
  if (only.empty()) {
    // Degenerate gate: fanout >= N collapses the tree to a star; the
    // resolved exceptions must be byte-identical to flat mode.
    {
      const DissemMeasurement flat =
          run_dissemination(256, overlay::OverlayParams::Mode::kFlat, 8);
      const DissemMeasurement star =
          run_dissemination(256, overlay::OverlayParams::Mode::kTree, 256);
      if (!flat.all_handled || !star.all_handled ||
          flat.resolved != star.resolved) {
        std::fprintf(stderr,
                     "bench_throughput: degenerate fanout=N tree diverged "
                     "from flat resolution at N=256 (flat=%016llx "
                     "tree=%016llx)\n",
                     static_cast<unsigned long long>(flat.resolved),
                     static_cast<unsigned long long>(star.resolved));
        return 1;
      }
    }
    std::int64_t tree_n1024 = 0;
    for (const int n : {256, 1024, 4096}) {
      const bool measure_flat = n <= 1024;  // N=4096 flat: 33.5M messages
      const std::int64_t flat_messages = flat_closed_form(n);
      bool resolved_match = true;
      if (measure_flat) {
        const DissemMeasurement flat =
            run_dissemination(n, overlay::OverlayParams::Mode::kFlat, 8);
        const DissemMeasurement tree =
            run_dissemination(n, overlay::OverlayParams::Mode::kTree, 8);
        resolved_match = flat.all_handled && tree.all_handled &&
                         flat.resolved == tree.resolved;
        if (flat.messages != flat_messages || !resolved_match) {
          std::fprintf(stderr,
                       "bench_throughput: dissemination mismatch at N=%d "
                       "(flat measured=%lld formula=%lld resolved_match=%d)\n",
                       n, static_cast<long long>(flat.messages),
                       static_cast<long long>(flat_messages),
                       resolved_match ? 1 : 0);
          return 1;
        }
        if (n == 1024) {
          tree_n1024 = tree.messages;
          if (tree.messages * 10 > flat_messages) {
            std::fprintf(stderr,
                         "bench_throughput: tree dissemination at N=1024 "
                         "sent %lld messages, above 10%% of flat %lld\n",
                         static_cast<long long>(tree.messages),
                         static_cast<long long>(flat_messages));
            return 1;
          }
        }
        const double ratio = static_cast<double>(tree.messages) /
                             static_cast<double>(flat_messages);
        std::printf("%-6d %14lld %14lld %9.1f %9.1f %8.2f%%  measured\n", n,
                    static_cast<long long>(flat_messages),
                    static_cast<long long>(tree.messages),
                    static_cast<double>(flat_messages) / n,
                    static_cast<double>(tree.messages) / n, 100.0 * ratio);
        dissemination.push(
            Json::object()
                .set("participants", Json::num(std::int64_t{n}))
                .set("flat_messages", Json::num(flat_messages))
                .set("flat_source", Json::str("measured"))
                .set("tree_messages", Json::num(tree.messages))
                .set("tree_source", Json::str("measured"))
                .set("tree_over_flat", Json::num(ratio))
                .set("flat_per_participant",
                     Json::num(static_cast<double>(flat_messages) / n))
                .set("tree_per_participant",
                     Json::num(static_cast<double>(tree.messages) / n))
                .set("resolved_checksum_match", Json::boolean(true)));
      } else {
        // Both cells projected: flat from the exact closed form, tree by
        // scaling the measured N=1024 envelope bill linearly in N (the
        // fanout-8 tree keeps the same depth at 1024 and 4096, so edge
        // count — and with it the batched envelope count — grows ~N).
        const std::int64_t tree_projected = tree_n1024 * (n / 1024);
        const double ratio = static_cast<double>(tree_projected) /
                             static_cast<double>(flat_messages);
        std::printf("%-6d %14lld %14lld %9.1f %9.1f %8.2f%%  projected\n", n,
                    static_cast<long long>(flat_messages),
                    static_cast<long long>(tree_projected),
                    static_cast<double>(flat_messages) / n,
                    static_cast<double>(tree_projected) / n, 100.0 * ratio);
        dissemination.push(
            Json::object()
                .set("participants", Json::num(std::int64_t{n}))
                .set("flat_messages", Json::num(flat_messages))
                .set("flat_source", Json::str("closed_form"))
                .set("tree_messages", Json::num(tree_projected))
                .set("tree_source", Json::str("projected"))
                .set("tree_over_flat", Json::num(ratio))
                .set("flat_per_participant",
                     Json::num(static_cast<double>(flat_messages) / n))
                .set("tree_per_participant",
                     Json::num(static_cast<double>(tree_projected) / n)));
      }
    }
  } else {
    std::printf("(skipped under --only)\n");
  }

  // Scaling rows: the same sweep (one rep) at 1, 2, 4 and nproc workers.
  // The merged campaign checksum must not depend on the thread count.
  std::vector<unsigned> scaling_threads{1, 2, 4,
                                        run::ThreadPool::default_threads()};
  std::sort(scaling_threads.begin(), scaling_threads.end());
  scaling_threads.erase(
      std::unique(scaling_threads.begin(), scaling_threads.end()),
      scaling_threads.end());

  std::printf("\n%-10s %12s %12s  %s\n", "threads", "wall ms", "events/s",
              "merged checksum");
  Json scaling = Json::array();
  std::uint64_t reference_digest = 0;
  bool merged_stable = true;
  for (std::size_t i = 0; i < scaling_threads.size(); ++i) {
    const unsigned t = scaling_threads[i];
    const run::CampaignResult r = sweep(configs, /*reps=*/1, t);
    if (!r.all_ok()) {
      std::fprintf(stderr, "bench_throughput: world failed: %s\n",
                   r.first_error().c_str());
      return 1;
    }
    if (i == 0) {
      reference_digest = r.merged_checksum;
    } else if (r.merged_checksum != reference_digest) {
      merged_stable = false;
    }
    const double events_per_sec =
        r.wall_ms > 0.0
            ? 1e3 * static_cast<double>(r.total_events) / r.wall_ms
            : 0.0;
    std::printf("%-10u %12.3f %12.0f  %s\n", t, r.wall_ms, events_per_sec,
                hex_digest(r.merged_checksum).c_str());
    scaling.push(Json::object()
                     .set("threads", Json::num(static_cast<std::int64_t>(t)))
                     .set("wall_ms", Json::num(r.wall_ms))
                     .set("events_per_sec", Json::num(events_per_sec))
                     .set("total_events", Json::num(r.total_events))
                     .set("merged_checksum",
                          Json::str(hex_digest(r.merged_checksum))));
  }
  if (!merged_stable) {
    std::fprintf(stderr,
                 "bench_throughput: merged campaign checksum depends on "
                 "thread count\n");
    return 1;
  }

  // Flight-recorder A/B: interleaved on/off repetitions of the largest
  // config per family. The recorder must be behaviourally invisible
  // (identical checksums — the zero-drift contract) and cheap (the issue
  // budget is <= 10% throughput overhead).
  std::printf("\n%-14s %12s %12s %10s\n", "recorder A/B", "on ms", "off ms",
              "overhead");
  Json overhead_rows = Json::array();
  for (const Config& config : configs) {
    if (config.participants != 1024) continue;  // largest of each family
    double on_ms = 0.0;
    double off_ms = 0.0;
    std::uint64_t on_checksum = 0;
    std::uint64_t off_checksum = 0;
    for (int rep = 0; rep < repetitions; ++rep) {  // interleaved on/off
      const run::WorldResult on = run_config(config, /*recorder=*/true);
      const run::WorldResult off = run_config(config, /*recorder=*/false);
      if (rep == 0 || on.wall_ms < on_ms) on_ms = on.wall_ms;
      if (rep == 0 || off.wall_ms < off_ms) off_ms = off.wall_ms;
      on_checksum = on.checksum;
      off_checksum = off.checksum;
    }
    if (on_checksum != off_checksum) {
      std::fprintf(stderr,
                   "bench_throughput: flight recorder drifted behaviour on "
                   "%s (on=%s off=%s)\n",
                   config.name.c_str(), hex_digest(on_checksum).c_str(),
                   hex_digest(off_checksum).c_str());
      return 1;
    }
    const double overhead = off_ms > 0.0 ? on_ms / off_ms - 1.0 : 0.0;
    std::printf("%-14s %12.3f %12.3f %9.1f%%\n", config.name.c_str(), on_ms,
                off_ms, 100.0 * overhead);
    if (overhead > 0.10) {
      std::fprintf(stderr,
                   "bench_throughput: WARNING recorder overhead %.1f%% on %s "
                   "exceeds the 10%% budget\n",
                   100.0 * overhead, config.name.c_str());
    }
    overhead_rows.push(
        Json::object()
            .set("config", Json::str(config.name))
            .set("wall_ms_recorder_on", Json::num(on_ms))
            .set("wall_ms_recorder_off", Json::num(off_ms))
            .set("overhead", Json::num(overhead))
            .set("checksum_match", Json::boolean(true)));
  }

  if (!dump_dir.empty()) {
    for (const Config& config : configs) {
      if (!dump_config_trace(config, dump_dir)) {
        std::fprintf(stderr, "bench_throughput: cannot write traces to %s\n",
                     dump_dir.c_str());
        return 1;
      }
    }
    std::printf("\nwrote %zu flight-recorder dumps to %s\n", configs.size(),
                dump_dir.c_str());
  }

  Json doc = bench_doc("bench_throughput", /*schema_version=*/5, threads)
                 .set("repetitions", Json::num(std::int64_t{repetitions}))
                 .set("results", std::move(results))
                 .set("dissemination", std::move(dissemination))
                 .set("latency", latency_percentiles(campaign.merged_metrics))
                 .set("recorder_overhead", std::move(overhead_rows))
                 .set("scaling", std::move(scaling));
  if (!doc.write_file(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
