// Simulator-core throughput: events/sec and protocol messages/sec.
//
// Unlike the §4.4 benches (which reproduce paper *claims*), this bench
// tracks the *implementation*: how fast the event loop, network accounting
// and resolution machinery execute. It sweeps the flat and nested-chain
// scenarios across N and emits BENCH_throughput.json so successive PRs
// record a perf trajectory.
//
// The `checksum` field fingerprints the run's observable behaviour (all
// counters + final virtual time + events fired). An optimization PR must
// leave every checksum unchanged: same protocol, faster core.
//
// Usage: bench_throughput [--json PATH] [--only SUBSTR] [--reps K]
//   --json PATH    where to write the JSON document (default
//                  ./BENCH_throughput.json)
//   --only SUBSTR  run only configs whose name contains SUBSTR (profiling
//                  aid; the JSON then covers just those configs)
//   --reps K       repetitions per config (default 3; min wall time wins)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "perf_json.h"
#include "util/hash.h"

namespace caa::bench {
namespace {

struct Config {
  std::string name;    // e.g. "flat_n256"
  std::string family;  // "flat" | "nested"
  int participants;
};

struct Measurement {
  std::int64_t events = 0;
  std::int64_t messages = 0;  // total packets sent (all kinds)
  sim::Time sim_time = 0;
  double wall_ms = 0.0;
  std::uint64_t checksum = 0;
  obs::MetricsSnapshot snapshot;  // folded into the JSON as "metrics"
};

/// One full scenario run; wall time covers only the event loop.
Measurement run_once(const Config& config) {
  using Clock = std::chrono::steady_clock;
  Measurement m;
  if (config.family == "flat") {
    scenario::FlatOptions options;
    options.participants = config.participants;
    options.raisers = 2;
    scenario::FlatScenario s(options);
    const auto start = Clock::now();
    m.events = static_cast<std::int64_t>(s.world().run());
    m.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
    m.sim_time = s.world().simulator().now();
    m.messages = s.world().metrics().total_sent();
    m.checksum = fnv1a64(s.world().metrics().counters().to_string());
    m.snapshot = s.world().metrics().snapshot();
  } else {
    scenario::NestedChainOptions options;
    options.participants = config.participants;
    options.depth = 3;
    scenario::NestedChainScenario s(options);
    const auto start = Clock::now();
    m.events = static_cast<std::int64_t>(s.world().run());
    m.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - start)
                    .count();
    m.sim_time = s.world().simulator().now();
    m.messages = s.world().metrics().total_sent();
    m.checksum = fnv1a64(s.world().metrics().counters().to_string());
    m.snapshot = s.world().metrics().snapshot();
  }
  m.checksum = fnv1a64_mix(m.checksum, static_cast<std::uint64_t>(m.sim_time));
  m.checksum = fnv1a64_mix(m.checksum, static_cast<std::uint64_t>(m.events));
  return m;
}

}  // namespace
}  // namespace caa::bench

int main(int argc, char** argv) {
  using namespace caa;
  using namespace caa::bench;

  std::string json_path = "BENCH_throughput.json";
  std::string only;
  int repetitions = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      repetitions = std::max(1, std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "bench_throughput: unknown argument '%s'\n"
                   "usage: bench_throughput [--json PATH] [--only SUBSTR] "
                   "[--reps K]\n",
                   argv[i]);
      return 2;
    }
  }

  std::vector<Config> configs;
  for (const int n : {64, 128, 256, 512, 1024}) {
    configs.push_back({"flat_n" + std::to_string(n), "flat", n});
  }
  for (const int n : {64, 128, 256, 512, 1024}) {
    configs.push_back({"nested_n" + std::to_string(n), "nested", n});
  }
  if (!only.empty()) {
    std::erase_if(configs, [&](const Config& c) {
      return c.name.find(only) == std::string::npos;
    });
    if (configs.empty()) {
      std::fprintf(stderr,
                   "bench_throughput: --only '%s' matches no config\n",
                   only.c_str());
      return 2;
    }
  }

  header("Simulator-core throughput (flat: P=2 raisers; nested: depth 3)");
  std::printf("%-14s %10s %10s %12s %12s %10s  %s\n", "config", "events",
              "msgs", "events/s", "msgs/s", "wall ms", "checksum");

  const int kRepetitions = repetitions;
  Json results = Json::array();
  bool checksums_stable = true;
  for (const Config& config : configs) {
    Measurement best;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      Measurement m = run_once(config);
      if (rep == 0) {
        best = m;
      } else {
        // Identical work every repetition, or the bench itself is broken.
        if (m.checksum != best.checksum || m.events != best.events) {
          checksums_stable = false;
        }
        if (m.wall_ms < best.wall_ms) best = m;
      }
    }
    const double events_per_sec = best.wall_ms > 0.0
                                      ? 1e3 * static_cast<double>(best.events) /
                                            best.wall_ms
                                      : 0.0;
    const double messages_per_sec =
        best.wall_ms > 0.0
            ? 1e3 * static_cast<double>(best.messages) / best.wall_ms
            : 0.0;
    const std::string checksum = hex_digest(best.checksum);
    std::printf("%-14s %10lld %10lld %12.0f %12.0f %10.3f  %s\n",
                config.name.c_str(), static_cast<long long>(best.events),
                static_cast<long long>(best.messages), events_per_sec,
                messages_per_sec, best.wall_ms, checksum.c_str());

    // The full counter snapshot rides along so downstream tooling can diff
    // behaviour between runs without re-deriving it from the checksum.
    Json metrics = Json::object();
    for (const auto& [name, value] : best.snapshot.counters) {
      metrics.set(name, Json::num(value));
    }
    results.push(
        Json::object()
            .set("bench", Json::str("bench_throughput"))
            .set("config", Json::str(config.name))
            .set("family", Json::str(config.family))
            .set("participants", Json::num(std::int64_t{config.participants}))
            .set("events", Json::num(best.events))
            .set("events_per_sec", Json::num(events_per_sec))
            .set("messages", Json::num(best.messages))
            .set("messages_per_sec", Json::num(messages_per_sec))
            .set("wall_ms", Json::num(best.wall_ms))
            .set("sim_time", Json::num(static_cast<std::int64_t>(best.sim_time)))
            .set("checksum", Json::str(checksum))
            .set("metrics", std::move(metrics)));
  }

  if (!checksums_stable) {
    std::fprintf(stderr,
                 "bench_throughput: nondeterministic run detected — "
                 "checksums differ across repetitions\n");
    return 1;
  }

#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  Json doc = Json::object()
                 .set("bench", Json::str("bench_throughput"))
                 .set("schema_version", Json::num(std::int64_t{1}))
                 .set("build_type", Json::str(build_type))
                 .set("repetitions", Json::num(std::int64_t{kRepetitions}))
                 .set("results", std::move(results));
  if (!doc.write_file(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
