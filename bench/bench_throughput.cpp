// Simulator-core throughput: events/sec and protocol messages/sec.
//
// Unlike the §4.4 benches (which reproduce paper *claims*), this bench
// tracks the *implementation*: how fast the event loop, network accounting
// and resolution machinery execute. It sweeps the flat and nested-chain
// scenarios across N and emits BENCH_throughput.json so successive PRs
// record a perf trajectory.
//
// The sweep runs through run::Campaign: every (config, repetition) pair is
// one independent world job, sharded across `--threads` workers. World
// seeds stay at the WorldConfig default (42) — NOT the campaign-derived
// seed — so the per-config `checksum` field stays comparable with every
// earlier PR's BENCH_throughput.json. A `scaling` section re-runs the
// sweep at threads = 1, 2, 4, nproc and records wall time plus the merged
// campaign checksum, which must be identical for every thread count.
//
// The `checksum` field fingerprints the run's observable behaviour (all
// counters + final virtual time + events fired). An optimization PR must
// leave every checksum unchanged: same protocol, faster core.
//
// Usage: bench_throughput [--json PATH] [--only SUBSTR] [--reps K]
//                         [--threads T] [--dump-traces DIR]
//   --json PATH    where to write the JSON document (default
//                  ./BENCH_throughput.json)
//   --only SUBSTR  run only configs whose name contains SUBSTR (profiling
//                  aid; the JSON then covers just those configs)
//   --reps K       repetitions per config (default 3; min wall time wins)
//   --threads T    campaign worker threads (default 1; 0 = nproc)
//   --dump-traces DIR  write per-config flight-recorder dumps
//                  (<config>.caafr) and critical-path summaries
//                  (<config>.critical_path.txt) into DIR
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "perf_json.h"
#include "run/campaign.h"
#include "run/thread_pool.h"
#include "util/hash.h"

namespace caa::bench {
namespace {

struct Config {
  std::string name;    // e.g. "flat_n256"
  std::string family;  // "flat" | "nested"
  int participants;
};

/// World job for one config. Seeds are deliberately left at the
/// WorldConfig default so checksums reproduce the committed perf record.
/// `recorder` toggles the flight recorder for the A/B overhead rows.
run::WorldResult run_config(const Config& config, bool recorder = true) {
  if (config.family == "flat") {
    scenario::FlatOptions options;
    options.participants = config.participants;
    options.raisers = 2;
    options.world.flight_recorder = recorder;
    scenario::FlatScenario s(options);
    return run::measure(config.name, s.world(),
                        [&s] { return s.world().run(); });
  }
  scenario::NestedChainOptions options;
  options.participants = config.participants;
  options.depth = 3;
  options.world.flight_recorder = recorder;
  scenario::NestedChainScenario s(options);
  return run::measure(config.name, s.world(),
                      [&s] { return s.world().run(); });
}

/// Re-runs one config with the recorder on and writes its black box plus
/// the extracted critical paths next to the JSON outputs.
bool dump_config_trace(const Config& config, const std::string& dir) {
  const std::string base = dir + "/" + config.name;
  if (config.family == "flat") {
    scenario::FlatOptions options;
    options.participants = config.participants;
    options.raisers = 2;
    scenario::FlatScenario s(options);
    s.run();
    if (!s.world().write_recorder_dump(base + ".caafr")) return false;
    std::ofstream out(base + ".critical_path.txt", std::ios::binary);
    out << s.world().critical_path_report();
    return out.good();
  }
  scenario::NestedChainOptions options;
  options.participants = config.participants;
  options.depth = 3;
  scenario::NestedChainScenario s(options);
  s.run();
  if (!s.world().write_recorder_dump(base + ".caafr")) return false;
  std::ofstream out(base + ".critical_path.txt", std::ios::binary);
  out << s.world().critical_path_report();
  return out.good();
}

/// One campaign over `configs` (reps jobs per config) at `threads` workers.
run::CampaignResult sweep(const std::vector<Config>& configs, int reps,
                          unsigned threads) {
  run::Campaign campaign({.seed = 42, .threads = threads});
  for (const Config& config : configs) {
    for (int rep = 0; rep < reps; ++rep) {
      campaign.add(config.name + "#" + std::to_string(rep),
                   [&config](const run::WorldContext&) {
                     return run_config(config);
                   });
    }
  }
  return campaign.run();
}

}  // namespace
}  // namespace caa::bench

int main(int argc, char** argv) {
  using namespace caa;
  using namespace caa::bench;

  std::string json_path = "BENCH_throughput.json";
  std::string only;
  std::string dump_dir;
  int repetitions = 3;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      repetitions = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--dump-traces") == 0 && i + 1 < argc) {
      dump_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "bench_throughput: unknown argument '%s'\n"
                   "usage: bench_throughput [--json PATH] [--only SUBSTR] "
                   "[--reps K] [--threads T] [--dump-traces DIR]\n",
                   argv[i]);
      return 2;
    }
  }

  std::vector<Config> configs;
  for (const int n : {64, 128, 256, 512, 1024}) {
    configs.push_back({"flat_n" + std::to_string(n), "flat", n});
  }
  for (const int n : {64, 128, 256, 512, 1024}) {
    configs.push_back({"nested_n" + std::to_string(n), "nested", n});
  }
  if (!only.empty()) {
    std::erase_if(configs, [&](const Config& c) {
      return c.name.find(only) == std::string::npos;
    });
    if (configs.empty()) {
      std::fprintf(stderr,
                   "bench_throughput: --only '%s' matches no config\n",
                   only.c_str());
      return 2;
    }
  }

  header("Simulator-core throughput (flat: P=2 raisers; nested: depth 3)");
  std::printf("%-14s %10s %10s %12s %12s %10s  %s\n", "config", "events",
              "msgs", "events/s", "msgs/s", "wall ms", "checksum");

  const run::CampaignResult campaign = sweep(configs, repetitions, threads);
  if (!campaign.all_ok()) {
    std::fprintf(stderr, "bench_throughput: world failed: %s\n",
                 campaign.first_error().c_str());
    return 1;
  }

  Json results = Json::array();
  bool checksums_stable = true;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const Config& config = configs[c];
    // Jobs were added config-major: reps consecutive worlds per config.
    const run::WorldResult* best = nullptr;
    for (int rep = 0; rep < repetitions; ++rep) {
      const run::WorldResult& m =
          campaign.worlds[c * static_cast<std::size_t>(repetitions) +
                          static_cast<std::size_t>(rep)];
      if (best == nullptr) {
        best = &m;
      } else {
        // Identical work every repetition, or the bench itself is broken.
        if (m.checksum != best->checksum || m.events != best->events) {
          checksums_stable = false;
        }
        if (m.wall_ms < best->wall_ms) best = &m;
      }
    }
    const double events_per_sec =
        best->wall_ms > 0.0
            ? 1e3 * static_cast<double>(best->events) / best->wall_ms
            : 0.0;
    const double messages_per_sec =
        best->wall_ms > 0.0
            ? 1e3 * static_cast<double>(best->messages) / best->wall_ms
            : 0.0;
    const std::string checksum = hex_digest(best->checksum);
    std::printf("%-14s %10lld %10lld %12.0f %12.0f %10.3f  %s\n",
                config.name.c_str(), static_cast<long long>(best->events),
                static_cast<long long>(best->messages), events_per_sec,
                messages_per_sec, best->wall_ms, checksum.c_str());

    // The full counter snapshot rides along so downstream tooling can diff
    // behaviour between runs without re-deriving it from the checksum.
    Json metrics = Json::object();
    for (const auto& [name, value] : best->metrics.counters) {
      metrics.set(name, Json::num(value));
    }
    results.push(
        Json::object()
            .set("bench", Json::str("bench_throughput"))
            .set("config", Json::str(config.name))
            .set("family", Json::str(config.family))
            .set("participants", Json::num(std::int64_t{config.participants}))
            .set("events", Json::num(best->events))
            .set("events_per_sec", Json::num(events_per_sec))
            .set("messages", Json::num(best->messages))
            .set("messages_per_sec", Json::num(messages_per_sec))
            .set("wall_ms", Json::num(best->wall_ms))
            .set("sim_time", Json::num(static_cast<std::int64_t>(best->sim_time)))
            .set("checksum", Json::str(checksum))
            .set("metrics", std::move(metrics)));
  }

  if (!checksums_stable) {
    std::fprintf(stderr,
                 "bench_throughput: nondeterministic run detected — "
                 "checksums differ across repetitions\n");
    return 1;
  }

  // Scaling rows: the same sweep (one rep) at 1, 2, 4 and nproc workers.
  // The merged campaign checksum must not depend on the thread count.
  std::vector<unsigned> scaling_threads{1, 2, 4,
                                        run::ThreadPool::default_threads()};
  std::sort(scaling_threads.begin(), scaling_threads.end());
  scaling_threads.erase(
      std::unique(scaling_threads.begin(), scaling_threads.end()),
      scaling_threads.end());

  std::printf("\n%-10s %12s %12s  %s\n", "threads", "wall ms", "events/s",
              "merged checksum");
  Json scaling = Json::array();
  std::uint64_t reference_digest = 0;
  bool merged_stable = true;
  for (std::size_t i = 0; i < scaling_threads.size(); ++i) {
    const unsigned t = scaling_threads[i];
    const run::CampaignResult r = sweep(configs, /*reps=*/1, t);
    if (!r.all_ok()) {
      std::fprintf(stderr, "bench_throughput: world failed: %s\n",
                   r.first_error().c_str());
      return 1;
    }
    if (i == 0) {
      reference_digest = r.merged_checksum;
    } else if (r.merged_checksum != reference_digest) {
      merged_stable = false;
    }
    const double events_per_sec =
        r.wall_ms > 0.0
            ? 1e3 * static_cast<double>(r.total_events) / r.wall_ms
            : 0.0;
    std::printf("%-10u %12.3f %12.0f  %s\n", t, r.wall_ms, events_per_sec,
                hex_digest(r.merged_checksum).c_str());
    scaling.push(Json::object()
                     .set("threads", Json::num(static_cast<std::int64_t>(t)))
                     .set("wall_ms", Json::num(r.wall_ms))
                     .set("events_per_sec", Json::num(events_per_sec))
                     .set("total_events", Json::num(r.total_events))
                     .set("merged_checksum",
                          Json::str(hex_digest(r.merged_checksum))));
  }
  if (!merged_stable) {
    std::fprintf(stderr,
                 "bench_throughput: merged campaign checksum depends on "
                 "thread count\n");
    return 1;
  }

  // Flight-recorder A/B: interleaved on/off repetitions of the largest
  // config per family. The recorder must be behaviourally invisible
  // (identical checksums — the zero-drift contract) and cheap (the issue
  // budget is <= 10% throughput overhead).
  std::printf("\n%-14s %12s %12s %10s\n", "recorder A/B", "on ms", "off ms",
              "overhead");
  Json overhead_rows = Json::array();
  for (const Config& config : configs) {
    if (config.participants != 1024) continue;  // largest of each family
    double on_ms = 0.0;
    double off_ms = 0.0;
    std::uint64_t on_checksum = 0;
    std::uint64_t off_checksum = 0;
    for (int rep = 0; rep < repetitions; ++rep) {  // interleaved on/off
      const run::WorldResult on = run_config(config, /*recorder=*/true);
      const run::WorldResult off = run_config(config, /*recorder=*/false);
      if (rep == 0 || on.wall_ms < on_ms) on_ms = on.wall_ms;
      if (rep == 0 || off.wall_ms < off_ms) off_ms = off.wall_ms;
      on_checksum = on.checksum;
      off_checksum = off.checksum;
    }
    if (on_checksum != off_checksum) {
      std::fprintf(stderr,
                   "bench_throughput: flight recorder drifted behaviour on "
                   "%s (on=%s off=%s)\n",
                   config.name.c_str(), hex_digest(on_checksum).c_str(),
                   hex_digest(off_checksum).c_str());
      return 1;
    }
    const double overhead = off_ms > 0.0 ? on_ms / off_ms - 1.0 : 0.0;
    std::printf("%-14s %12.3f %12.3f %9.1f%%\n", config.name.c_str(), on_ms,
                off_ms, 100.0 * overhead);
    if (overhead > 0.10) {
      std::fprintf(stderr,
                   "bench_throughput: WARNING recorder overhead %.1f%% on %s "
                   "exceeds the 10%% budget\n",
                   100.0 * overhead, config.name.c_str());
    }
    overhead_rows.push(
        Json::object()
            .set("config", Json::str(config.name))
            .set("wall_ms_recorder_on", Json::num(on_ms))
            .set("wall_ms_recorder_off", Json::num(off_ms))
            .set("overhead", Json::num(overhead))
            .set("checksum_match", Json::boolean(true)));
  }

  if (!dump_dir.empty()) {
    for (const Config& config : configs) {
      if (!dump_config_trace(config, dump_dir)) {
        std::fprintf(stderr, "bench_throughput: cannot write traces to %s\n",
                     dump_dir.c_str());
        return 1;
      }
    }
    std::printf("\nwrote %zu flight-recorder dumps to %s\n", configs.size(),
                dump_dir.c_str());
  }

  Json doc = bench_doc("bench_throughput", /*schema_version=*/3, threads)
                 .set("repetitions", Json::num(std::int64_t{repetitions}))
                 .set("results", std::move(results))
                 .set("latency", latency_percentiles(campaign.merged_metrics))
                 .set("recorder_overhead", std::move(overhead_rows))
                 .set("scaling", std::move(scaling));
  if (!doc.write_file(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
