// Ablation — resolution strategies (§4.5: "dynamic change of different
// resolution algorithms (e.g. centralised or decentralised)").
//
// Compares the paper's decentralized algorithm against the centralized
// manager-based variant on flat actions: messages and time-to-commit as N
// and the number of simultaneous raisers P grow. The centralized variant
// sends fewer messages (3(N-1)+P vs (N-1)(2P+1)) but serializes through
// one manager and adds a hop of latency when the raiser is not the
// manager; it also reintroduces a single point of failure — which the
// decentralized algorithm plus committee avoids.
#include "bench_common.h"
#include "resolve/centralized_resolver.h"

namespace caa::bench {
namespace {

struct Out {
  std::int64_t messages = 0;
  sim::Time latency = 0;
};

Out run_central(int n, int p) {
  World w;
  std::vector<std::unique_ptr<resolve::CentralizedParticipant>> objects;
  std::vector<ObjectId> ids;
  ex::ExceptionTree tree = ex::shapes::star(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    objects.push_back(std::make_unique<resolve::CentralizedParticipant>());
    w.attach(*objects.back(), "Z" + std::to_string(i + 1), w.add_node());
    ids.push_back(objects.back()->id());
  }
  for (auto& o : objects) {
    resolve::CentralizedParticipant::Config config;
    config.members = ids;
    config.tree = &tree;
    o->configure(std::move(config));
  }
  const sim::Time raise_at = 1000;
  w.at(raise_at, [&] {
    // Raisers are the LAST p objects: worst case for the centralized
    // variant (manager is object 0, one extra hop per exception).
    for (int i = n - p; i < n; ++i) {
      objects[i]->raise(tree.find("s" + std::to_string(i + 1)));
    }
  });
  w.run();
  Out out;
  const obs::Metrics& m = w.metrics();
  out.messages = m.sent(net::MsgKind::kCentralException) +
                 m.sent(net::MsgKind::kCentralFreeze) +
                 m.sent(net::MsgKind::kCentralFrozenAck) +
                 m.sent(net::MsgKind::kCentralCommit);
  out.latency = w.simulator().now() - raise_at;
  for (auto& o : objects) {
    if (!o->resolved().valid()) std::abort();
  }
  return out;
}

}  // namespace
}  // namespace caa::bench

int main() {
  using namespace caa::bench;
  header("Ablation — decentralized (paper, §4.2) vs centralized (§4.5)");
  std::printf("%4s %4s | %12s %12s | %12s %12s\n", "N", "P", "dec msgs",
              "dec latency", "cen msgs", "cen latency");
  for (int n : {4, 8, 16, 32}) {
    for (int p : {1, n / 2, n}) {
      const RunResult dec = run_flat_scenario(n, p, 0);
      const Out cen = run_central(n, p);
      std::printf("%4d %4d | %12lld %12lld | %12lld %12lld\n", n, p,
                  static_cast<long long>(dec.messages),
                  static_cast<long long>(dec.resolution_latency),
                  static_cast<long long>(cen.messages),
                  static_cast<long long>(cen.latency));
    }
  }
  std::printf(
      "=> centralized trades message count for a serial manager (single\n"
      "   point of failure, extra hop for non-manager raisers); the paper's\n"
      "   decentralized algorithm pays (N-1)(2P+1) messages but any raiser\n"
      "   can complete the resolution, and the committee extension adds\n"
      "   crash tolerance at constant cost.\n");
  return 0;
}
