// Campaign-runner scaling: the same multi-world sweep at 1, 2, 4 and
// nproc worker threads.
//
// The workload is the throughput sweep's flat family (flat_n64..flat_n512),
// with `--worlds` independent worlds per size, each seeded from
// (campaign seed, world index) via run::derive_seed. Two things are
// recorded per thread count:
//
//   * wall time / aggregate events-per-second — the scaling curve;
//   * the merged campaign checksum — which MUST be identical at every
//     thread count (the bench exits 1 otherwise). That is the campaign
//     runner's core promise: parallelism changes wall time, never results.
//
// Output lands in BENCH_campaign.json; `speedup` is events/sec at
// threads=nproc over threads=1 (≈1.0 on a single-core machine).
//
// Usage: bench_campaign [--json PATH] [--worlds K] [--seed S] [--threads T]
//                       [--dump-traces DIR]
//   --json PATH   output document (default ./BENCH_campaign.json)
//   --worlds K    worlds per size (default 4)
//   --seed S      campaign seed (default 42)
//   --threads T   extra thread count to include beyond {1,2,4,nproc}
//   --dump-traces DIR  arm per-world crash dumps into DIR and write one
//                 representative flight-recorder dump + critical-path
//                 summary per size
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "perf_json.h"
#include "run/campaign.h"
#include "run/thread_pool.h"
#include "util/hash.h"

namespace caa::bench {
namespace {

run::CampaignResult sweep(const std::vector<int>& sizes, int worlds_per_size,
                          std::uint64_t seed, unsigned threads,
                          const std::string& dump_dir = {}) {
  run::Campaign campaign({.seed = seed, .threads = threads,
                          .dump_dir = dump_dir});
  for (const int n : sizes) {
    for (int k = 0; k < worlds_per_size; ++k) {
      campaign.add("flat_n" + std::to_string(n) + "#" + std::to_string(k),
                   [n](const run::WorldContext& ctx) {
                     scenario::FlatOptions options;
                     options.participants = n;
                     options.raisers = 2;
                     options.world.seed = ctx.seed;
                     scenario::FlatScenario s(options);
                     return run::measure("flat_n" + std::to_string(n),
                                         s.world(),
                                         [&s] { return s.world().run(); });
                   });
    }
  }
  return campaign.run();
}

}  // namespace
}  // namespace caa::bench

int main(int argc, char** argv) {
  using namespace caa;
  using namespace caa::bench;

  std::string json_path = "BENCH_campaign.json";
  std::string dump_dir;
  int worlds_per_size = 4;
  std::uint64_t seed = 42;
  unsigned extra_threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--worlds") == 0 && i + 1 < argc) {
      worlds_per_size = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      extra_threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--dump-traces") == 0 && i + 1 < argc) {
      dump_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "bench_campaign: unknown argument '%s'\n"
                   "usage: bench_campaign [--json PATH] [--worlds K] "
                   "[--seed S] [--threads T] [--dump-traces DIR]\n",
                   argv[i]);
      return 2;
    }
  }

  const std::vector<int> sizes{64, 128, 256, 512};
  const unsigned nproc = run::ThreadPool::default_threads();

  std::vector<unsigned> thread_counts{1, 2, 4, nproc};
  if (extra_threads != 0) thread_counts.push_back(extra_threads);
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  header("Campaign runner scaling (flat_n64..flat_n512, " +
         std::to_string(worlds_per_size) + " worlds per size, seed " +
         std::to_string(seed) + ")");
  std::printf("%-10s %10s %12s %12s %10s  %s\n", "threads", "worlds",
              "wall ms", "events/s", "speedup", "merged checksum");

  Json rows = Json::array();
  std::uint64_t reference_digest = 0;
  std::string reference_latency;
  Json latency = Json::array();
  double baseline_events_per_sec = 0.0;
  double nproc_events_per_sec = 0.0;
  bool merged_stable = true;
  bool latency_stable = true;
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    const unsigned t = thread_counts[i];
    const run::CampaignResult r =
        sweep(sizes, worlds_per_size, seed, t, dump_dir);
    if (!r.all_ok()) {
      std::fprintf(stderr, "bench_campaign: world failed: %s\n",
                   r.first_error().c_str());
      return 1;
    }
    // The merged percentile rows are part of the thread-count-invariance
    // contract just like the checksum: bucket-wise histogram merges are
    // commutative, so the rendered rows must be byte-identical at every
    // worker count.
    Json this_latency = latency_percentiles(r.merged_metrics);
    const std::string latency_text = this_latency.dump();
    if (i == 0) {
      reference_digest = r.merged_checksum;
      reference_latency = latency_text;
      latency = std::move(this_latency);
    } else {
      if (r.merged_checksum != reference_digest) merged_stable = false;
      if (latency_text != reference_latency) latency_stable = false;
    }
    const double events_per_sec =
        r.wall_ms > 0.0
            ? 1e3 * static_cast<double>(r.total_events) / r.wall_ms
            : 0.0;
    if (t == 1) baseline_events_per_sec = events_per_sec;
    if (t == nproc) nproc_events_per_sec = events_per_sec;
    const double speedup = baseline_events_per_sec > 0.0
                               ? events_per_sec / baseline_events_per_sec
                               : 0.0;
    std::printf("%-10u %10zu %12.3f %12.0f %9.2fx  %s\n", t, r.worlds.size(),
                r.wall_ms, events_per_sec, speedup,
                hex_digest(r.merged_checksum).c_str());
    rows.push(Json::object()
                  .set("threads", Json::num(static_cast<std::int64_t>(t)))
                  .set("worlds",
                       Json::num(static_cast<std::int64_t>(r.worlds.size())))
                  .set("wall_ms", Json::num(r.wall_ms))
                  .set("total_events", Json::num(r.total_events))
                  .set("total_messages", Json::num(r.total_messages))
                  .set("events_per_sec", Json::num(events_per_sec))
                  .set("speedup", Json::num(speedup))
                  .set("merged_checksum",
                       Json::str(hex_digest(r.merged_checksum))));
  }

  if (!merged_stable) {
    std::fprintf(stderr,
                 "bench_campaign: merged campaign checksum depends on "
                 "thread count\n");
    return 1;
  }
  if (!latency_stable) {
    std::fprintf(stderr,
                 "bench_campaign: merged latency percentiles depend on "
                 "thread count\n");
    return 1;
  }

  if (!dump_dir.empty()) {
    // One representative world per size: its black box and critical paths
    // land next to the JSON for post-mortem comparison against failures.
    for (const int n : sizes) {
      scenario::FlatOptions options;
      options.participants = n;
      options.raisers = 2;
      options.world.seed = run::derive_seed(seed, 0);
      scenario::FlatScenario s(options);
      s.run();
      const std::string base = dump_dir + "/flat_n" + std::to_string(n);
      if (!s.world().write_recorder_dump(base + ".caafr")) return 1;
      std::ofstream out(base + ".critical_path.txt", std::ios::binary);
      out << s.world().critical_path_report();
      if (!out.good()) return 1;
    }
    std::printf("wrote %zu flight-recorder dumps to %s\n", sizes.size(),
                dump_dir.c_str());
  }

  const double speedup_at_nproc =
      baseline_events_per_sec > 0.0
          ? nproc_events_per_sec / baseline_events_per_sec
          : 0.0;
  std::printf("=> merged checksum %s identical across every thread count; "
              "speedup at nproc=%u: %.2fx\n",
              hex_digest(reference_digest).c_str(), nproc, speedup_at_nproc);

  Json doc =
      bench_doc("bench_campaign", /*schema_version=*/2, nproc)
          .set("seed", Json::num(static_cast<std::int64_t>(seed)))
          .set("worlds_per_size", Json::num(std::int64_t{worlds_per_size}))
          .set("merged_checksum", Json::str(hex_digest(reference_digest)))
          .set("speedup_at_nproc", Json::num(speedup_at_nproc))
          .set("latency", std::move(latency))
          .set("scaling", std::move(rows));
  if (!doc.write_file(json_path)) return 1;
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
