// E4 — §4.4 general formula: total messages = (N-1)(2P + 3Q + 1), where P
// objects raise simultaneously and Q (disjoint) objects are inside nested
// actions. Sweeps the (N, P, Q) grid and reports measured vs formula.
#include "bench_common.h"

int main() {
  using namespace caa::bench;
  header("E4 — general formula sweep: messages = (N-1)(2P+3Q+1)");
  std::printf("%6s %6s %6s %12s %12s %7s\n", "N", "P", "Q", "measured",
              "formula", "match");
  int rows = 0, matches = 0;
  for (int n : {3, 4, 6, 8, 12, 16, 24}) {
    for (int p = 1; p <= n; p += (n > 8 ? 3 : 1)) {
      for (int q = 0; p + q <= n; q += (n > 8 ? 3 : 1)) {
        const RunResult r = run_flat_scenario(n, p, q);
        const std::int64_t expect =
            static_cast<std::int64_t>(n - 1) * (2 * p + 3 * q + 1);
        const bool match = r.messages == expect && r.all_handled;
        ++rows;
        matches += match ? 1 : 0;
        std::printf("%6d %6d %6d %12lld %12lld %7s\n", n, p, q,
                    static_cast<long long>(r.messages),
                    static_cast<long long>(expect), match ? "yes" : "NO");
      }
    }
  }
  std::printf("=> %d/%d grid points match the closed form exactly\n", matches,
              rows);
  std::printf("   (the paper's formula assumes raisers and nested objects "
              "are disjoint sets,\n    which this scenario constructs; "
              "overlapping roles send their exception\n    inside "
              "NestedCompleted instead of a separate Exception — see "
              "EXPERIMENTS.md)\n");
  return 0;
}
