# Empty compiler generated dependencies file for local_context_test.
# This may be replaced when dependencies are built.
