file(REMOVE_RECURSE
  "CMakeFiles/local_context_test.dir/local_context_test.cpp.o"
  "CMakeFiles/local_context_test.dir/local_context_test.cpp.o.d"
  "local_context_test"
  "local_context_test.pdb"
  "local_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
