# Empty dependencies file for caa_crash_test.
# This may be replaced when dependencies are built.
