file(REMOVE_RECURSE
  "CMakeFiles/caa_crash_test.dir/caa_crash_test.cpp.o"
  "CMakeFiles/caa_crash_test.dir/caa_crash_test.cpp.o.d"
  "caa_crash_test"
  "caa_crash_test.pdb"
  "caa_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caa_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
