# Empty dependencies file for ex_test.
# This may be replaced when dependencies are built.
