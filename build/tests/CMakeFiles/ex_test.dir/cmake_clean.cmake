file(REMOVE_RECURSE
  "CMakeFiles/ex_test.dir/ex_test.cpp.o"
  "CMakeFiles/ex_test.dir/ex_test.cpp.o.d"
  "ex_test"
  "ex_test.pdb"
  "ex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
