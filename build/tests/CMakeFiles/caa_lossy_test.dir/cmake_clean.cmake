file(REMOVE_RECURSE
  "CMakeFiles/caa_lossy_test.dir/caa_lossy_test.cpp.o"
  "CMakeFiles/caa_lossy_test.dir/caa_lossy_test.cpp.o.d"
  "caa_lossy_test"
  "caa_lossy_test.pdb"
  "caa_lossy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caa_lossy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
