# Empty dependencies file for caa_lossy_test.
# This may be replaced when dependencies are built.
