file(REMOVE_RECURSE
  "CMakeFiles/caa_partition_test.dir/caa_partition_test.cpp.o"
  "CMakeFiles/caa_partition_test.dir/caa_partition_test.cpp.o.d"
  "caa_partition_test"
  "caa_partition_test.pdb"
  "caa_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caa_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
