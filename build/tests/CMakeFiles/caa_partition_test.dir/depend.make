# Empty dependencies file for caa_partition_test.
# This may be replaced when dependencies are built.
