# Empty compiler generated dependencies file for caa_basic_test.
# This may be replaced when dependencies are built.
