file(REMOVE_RECURSE
  "CMakeFiles/caa_basic_test.dir/caa_basic_test.cpp.o"
  "CMakeFiles/caa_basic_test.dir/caa_basic_test.cpp.o.d"
  "caa_basic_test"
  "caa_basic_test.pdb"
  "caa_basic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caa_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
