file(REMOVE_RECURSE
  "CMakeFiles/caa_txn_integration_test.dir/caa_txn_integration_test.cpp.o"
  "CMakeFiles/caa_txn_integration_test.dir/caa_txn_integration_test.cpp.o.d"
  "caa_txn_integration_test"
  "caa_txn_integration_test.pdb"
  "caa_txn_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caa_txn_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
