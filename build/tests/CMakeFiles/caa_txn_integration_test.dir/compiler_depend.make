# Empty compiler generated dependencies file for caa_txn_integration_test.
# This may be replaced when dependencies are built.
