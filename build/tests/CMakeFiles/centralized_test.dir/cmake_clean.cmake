file(REMOVE_RECURSE
  "CMakeFiles/centralized_test.dir/centralized_test.cpp.o"
  "CMakeFiles/centralized_test.dir/centralized_test.cpp.o.d"
  "centralized_test"
  "centralized_test.pdb"
  "centralized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
