file(REMOVE_RECURSE
  "CMakeFiles/resolver_core_test.dir/resolver_core_test.cpp.o"
  "CMakeFiles/resolver_core_test.dir/resolver_core_test.cpp.o.d"
  "resolver_core_test"
  "resolver_core_test.pdb"
  "resolver_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
