# Empty compiler generated dependencies file for caa_races_test.
# This may be replaced when dependencies are built.
