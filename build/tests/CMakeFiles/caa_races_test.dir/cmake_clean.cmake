file(REMOVE_RECURSE
  "CMakeFiles/caa_races_test.dir/caa_races_test.cpp.o"
  "CMakeFiles/caa_races_test.dir/caa_races_test.cpp.o.d"
  "caa_races_test"
  "caa_races_test.pdb"
  "caa_races_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caa_races_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
