# Empty compiler generated dependencies file for trace_narrative_test.
# This may be replaced when dependencies are built.
