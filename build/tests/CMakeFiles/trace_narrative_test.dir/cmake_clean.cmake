file(REMOVE_RECURSE
  "CMakeFiles/trace_narrative_test.dir/trace_narrative_test.cpp.o"
  "CMakeFiles/trace_narrative_test.dir/trace_narrative_test.cpp.o.d"
  "trace_narrative_test"
  "trace_narrative_test.pdb"
  "trace_narrative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_narrative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
