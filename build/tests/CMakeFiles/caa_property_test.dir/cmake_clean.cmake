file(REMOVE_RECURSE
  "CMakeFiles/caa_property_test.dir/caa_property_test.cpp.o"
  "CMakeFiles/caa_property_test.dir/caa_property_test.cpp.o.d"
  "caa_property_test"
  "caa_property_test.pdb"
  "caa_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caa_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
