# Empty compiler generated dependencies file for caa_property_test.
# This may be replaced when dependencies are built.
