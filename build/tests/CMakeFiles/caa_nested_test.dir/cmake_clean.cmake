file(REMOVE_RECURSE
  "CMakeFiles/caa_nested_test.dir/caa_nested_test.cpp.o"
  "CMakeFiles/caa_nested_test.dir/caa_nested_test.cpp.o.d"
  "caa_nested_test"
  "caa_nested_test.pdb"
  "caa_nested_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caa_nested_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
