# Empty dependencies file for caa_nested_test.
# This may be replaced when dependencies are built.
