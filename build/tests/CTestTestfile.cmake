# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/caa_basic_test[1]_include.cmake")
include("/root/repo/build/tests/caa_nested_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/ex_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_core_test[1]_include.cmake")
include("/root/repo/build/tests/caa_property_test[1]_include.cmake")
include("/root/repo/build/tests/caa_crash_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/caa_lossy_test[1]_include.cmake")
include("/root/repo/build/tests/centralized_test[1]_include.cmake")
include("/root/repo/build/tests/trace_narrative_test[1]_include.cmake")
include("/root/repo/build/tests/caa_txn_integration_test[1]_include.cmake")
include("/root/repo/build/tests/local_context_test[1]_include.cmake")
include("/root/repo/build/tests/wire_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/caa_races_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/crash_property_test[1]_include.cmake")
include("/root/repo/build/tests/txn_property_test[1]_include.cmake")
include("/root/repo/build/tests/caa_partition_test[1]_include.cmake")
