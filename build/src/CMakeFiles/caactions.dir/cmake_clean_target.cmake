file(REMOVE_RECURSE
  "libcaactions.a"
)
