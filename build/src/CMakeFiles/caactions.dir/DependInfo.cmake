
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/caa/action_decl.cpp" "src/CMakeFiles/caactions.dir/caa/action_decl.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/caa/action_decl.cpp.o.d"
  "/root/repo/src/caa/action_instance.cpp" "src/CMakeFiles/caactions.dir/caa/action_instance.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/caa/action_instance.cpp.o.d"
  "/root/repo/src/caa/action_manager.cpp" "src/CMakeFiles/caactions.dir/caa/action_manager.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/caa/action_manager.cpp.o.d"
  "/root/repo/src/caa/participant.cpp" "src/CMakeFiles/caactions.dir/caa/participant.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/caa/participant.cpp.o.d"
  "/root/repo/src/caa/world.cpp" "src/CMakeFiles/caactions.dir/caa/world.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/caa/world.cpp.o.d"
  "/root/repo/src/ex/context_stack.cpp" "src/CMakeFiles/caactions.dir/ex/context_stack.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/ex/context_stack.cpp.o.d"
  "/root/repo/src/ex/exception.cpp" "src/CMakeFiles/caactions.dir/ex/exception.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/ex/exception.cpp.o.d"
  "/root/repo/src/ex/exception_tree.cpp" "src/CMakeFiles/caactions.dir/ex/exception_tree.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/ex/exception_tree.cpp.o.d"
  "/root/repo/src/ex/handler_table.cpp" "src/CMakeFiles/caactions.dir/ex/handler_table.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/ex/handler_table.cpp.o.d"
  "/root/repo/src/ex/local_context.cpp" "src/CMakeFiles/caactions.dir/ex/local_context.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/ex/local_context.cpp.o.d"
  "/root/repo/src/net/group.cpp" "src/CMakeFiles/caactions.dir/net/group.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/net/group.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/caactions.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/net/message.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/caactions.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/net/network.cpp.o.d"
  "/root/repo/src/net/reliable_link.cpp" "src/CMakeFiles/caactions.dir/net/reliable_link.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/net/reliable_link.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "src/CMakeFiles/caactions.dir/net/wire.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/net/wire.cpp.o.d"
  "/root/repo/src/resolve/arche_resolver.cpp" "src/CMakeFiles/caactions.dir/resolve/arche_resolver.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/resolve/arche_resolver.cpp.o.d"
  "/root/repo/src/resolve/centralized_resolver.cpp" "src/CMakeFiles/caactions.dir/resolve/centralized_resolver.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/resolve/centralized_resolver.cpp.o.d"
  "/root/repo/src/resolve/cr_resolver.cpp" "src/CMakeFiles/caactions.dir/resolve/cr_resolver.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/resolve/cr_resolver.cpp.o.d"
  "/root/repo/src/resolve/messages.cpp" "src/CMakeFiles/caactions.dir/resolve/messages.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/resolve/messages.cpp.o.d"
  "/root/repo/src/resolve/resolver_core.cpp" "src/CMakeFiles/caactions.dir/resolve/resolver_core.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/resolve/resolver_core.cpp.o.d"
  "/root/repo/src/rt/heartbeat.cpp" "src/CMakeFiles/caactions.dir/rt/heartbeat.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/rt/heartbeat.cpp.o.d"
  "/root/repo/src/rt/managed_object.cpp" "src/CMakeFiles/caactions.dir/rt/managed_object.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/rt/managed_object.cpp.o.d"
  "/root/repo/src/rt/registry.cpp" "src/CMakeFiles/caactions.dir/rt/registry.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/rt/registry.cpp.o.d"
  "/root/repo/src/rt/runtime.cpp" "src/CMakeFiles/caactions.dir/rt/runtime.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/rt/runtime.cpp.o.d"
  "/root/repo/src/scenario/scenarios.cpp" "src/CMakeFiles/caactions.dir/scenario/scenarios.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/scenario/scenarios.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/caactions.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/caactions.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/caactions.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/sim/trace.cpp.o.d"
  "/root/repo/src/txn/atomic_object.cpp" "src/CMakeFiles/caactions.dir/txn/atomic_object.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/txn/atomic_object.cpp.o.d"
  "/root/repo/src/txn/lock_manager.cpp" "src/CMakeFiles/caactions.dir/txn/lock_manager.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/txn/lock_manager.cpp.o.d"
  "/root/repo/src/txn/transaction.cpp" "src/CMakeFiles/caactions.dir/txn/transaction.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/txn/transaction.cpp.o.d"
  "/root/repo/src/txn/txn_manager.cpp" "src/CMakeFiles/caactions.dir/txn/txn_manager.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/txn/txn_manager.cpp.o.d"
  "/root/repo/src/util/counters.cpp" "src/CMakeFiles/caactions.dir/util/counters.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/util/counters.cpp.o.d"
  "/root/repo/src/util/intern.cpp" "src/CMakeFiles/caactions.dir/util/intern.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/util/intern.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/caactions.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/caactions.dir/util/log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
