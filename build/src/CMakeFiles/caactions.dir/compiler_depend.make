# Empty compiler generated dependencies file for caactions.
# This may be replaced when dependencies are built.
