file(REMOVE_RECURSE
  "CMakeFiles/bench_group_comm.dir/bench_group_comm.cpp.o"
  "CMakeFiles/bench_group_comm.dir/bench_group_comm.cpp.o.d"
  "bench_group_comm"
  "bench_group_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
