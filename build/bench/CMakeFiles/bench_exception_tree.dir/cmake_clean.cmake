file(REMOVE_RECURSE
  "CMakeFiles/bench_exception_tree.dir/bench_exception_tree.cpp.o"
  "CMakeFiles/bench_exception_tree.dir/bench_exception_tree.cpp.o.d"
  "bench_exception_tree"
  "bench_exception_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exception_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
