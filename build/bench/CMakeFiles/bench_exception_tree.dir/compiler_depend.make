# Empty compiler generated dependencies file for bench_exception_tree.
# This may be replaced when dependencies are built.
