file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_resolution.dir/bench_nested_resolution.cpp.o"
  "CMakeFiles/bench_nested_resolution.dir/bench_nested_resolution.cpp.o.d"
  "bench_nested_resolution"
  "bench_nested_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
