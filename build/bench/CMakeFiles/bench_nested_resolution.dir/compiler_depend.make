# Empty compiler generated dependencies file for bench_nested_resolution.
# This may be replaced when dependencies are built.
