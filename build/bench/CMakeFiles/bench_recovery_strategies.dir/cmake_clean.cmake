file(REMOVE_RECURSE
  "CMakeFiles/bench_recovery_strategies.dir/bench_recovery_strategies.cpp.o"
  "CMakeFiles/bench_recovery_strategies.dir/bench_recovery_strategies.cpp.o.d"
  "bench_recovery_strategies"
  "bench_recovery_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
