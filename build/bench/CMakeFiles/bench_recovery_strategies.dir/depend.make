# Empty dependencies file for bench_recovery_strategies.
# This may be replaced when dependencies are built.
