file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_abort.dir/bench_nested_abort.cpp.o"
  "CMakeFiles/bench_nested_abort.dir/bench_nested_abort.cpp.o.d"
  "bench_nested_abort"
  "bench_nested_abort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_abort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
