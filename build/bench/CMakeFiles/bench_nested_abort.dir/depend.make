# Empty dependencies file for bench_nested_abort.
# This may be replaced when dependencies are built.
