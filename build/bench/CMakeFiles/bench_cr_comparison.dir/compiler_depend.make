# Empty compiler generated dependencies file for bench_cr_comparison.
# This may be replaced when dependencies are built.
