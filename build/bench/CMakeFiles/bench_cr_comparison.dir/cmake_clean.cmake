file(REMOVE_RECURSE
  "CMakeFiles/bench_cr_comparison.dir/bench_cr_comparison.cpp.o"
  "CMakeFiles/bench_cr_comparison.dir/bench_cr_comparison.cpp.o.d"
  "bench_cr_comparison"
  "bench_cr_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cr_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
