file(REMOVE_RECURSE
  "CMakeFiles/bench_general_formula.dir/bench_general_formula.cpp.o"
  "CMakeFiles/bench_general_formula.dir/bench_general_formula.cpp.o.d"
  "bench_general_formula"
  "bench_general_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_general_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
