# Empty dependencies file for bench_general_formula.
# This may be replaced when dependencies are built.
