file(REMOVE_RECURSE
  "CMakeFiles/nested_production_cell.dir/nested_production_cell.cpp.o"
  "CMakeFiles/nested_production_cell.dir/nested_production_cell.cpp.o.d"
  "nested_production_cell"
  "nested_production_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_production_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
