# Empty compiler generated dependencies file for nested_production_cell.
# This may be replaced when dependencies are built.
