# Empty dependencies file for aircraft_engines.
# This may be replaced when dependencies are built.
