file(REMOVE_RECURSE
  "CMakeFiles/aircraft_engines.dir/aircraft_engines.cpp.o"
  "CMakeFiles/aircraft_engines.dir/aircraft_engines.cpp.o.d"
  "aircraft_engines"
  "aircraft_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aircraft_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
