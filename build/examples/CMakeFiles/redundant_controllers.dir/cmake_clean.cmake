file(REMOVE_RECURSE
  "CMakeFiles/redundant_controllers.dir/redundant_controllers.cpp.o"
  "CMakeFiles/redundant_controllers.dir/redundant_controllers.cpp.o.d"
  "redundant_controllers"
  "redundant_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundant_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
