# Empty compiler generated dependencies file for redundant_controllers.
# This may be replaced when dependencies are built.
