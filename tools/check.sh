#!/usr/bin/env bash
# Full verification matrix: configure + build + ctest for each CMake preset.
#
#   tools/check.sh                 # dev, release, asan, tsan in sequence
#   tools/check.sh dev asan        # just those presets
#
# Presets map to build dirs (see CMakePresets.json): dev -> build/,
# release -> build-release/, asan -> build-asan/, tsan -> build-tsan/.
# Exits non-zero on the first failing step.
#
# The tsan preset builds everything but runs only the multithreaded
# surface (campaign runner + thread pool + allocator pins): the rest of
# the suite is single-threaded by construction and already covered by the
# other presets, so re-running all of it under ThreadSanitizer's ~10x
# slowdown buys nothing.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(dev release asan tsan)
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===================================="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  if [ "${preset}" = "tsan" ]; then
    ctest --preset "${preset}" -j "${jobs}" \
      -R 'Campaign|ThreadPool|DeriveSeed|PropertySweep|CrashSweep|NetAlloc'
  else
    ctest --preset "${preset}" -j "${jobs}"
  fi
done

echo "==== all presets green: ${presets[*]}"
