#!/usr/bin/env bash
# Full verification matrix: configure + build + ctest for each CMake preset.
#
#   tools/check.sh            # dev, release, asan in sequence
#   tools/check.sh dev asan   # just those presets
#
# Presets map to build dirs (see CMakePresets.json): dev -> build/,
# release -> build-release/, asan -> build-asan/. Exits non-zero on the
# first failing step.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(dev release asan)
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===================================="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done

echo "==== all presets green: ${presets[*]}"
