#!/usr/bin/env bash
# Full verification matrix: configure + build + ctest for each CMake preset.
#
#   tools/check.sh                 # dev, release, asan, tsan, ubsan
#   tools/check.sh dev asan        # just those presets
#
# Presets map to build dirs (see CMakePresets.json): dev -> build/,
# release -> build-release/, asan -> build-asan/, tsan -> build-tsan/,
# ubsan -> build-ubsan/. Exits non-zero on the first failing step.
#
# The tsan preset builds everything but runs only the multithreaded
# surface (campaign runner + thread pool + allocator pins): the rest of
# the suite is single-threaded by construction and already covered by the
# other presets, so re-running all of it under ThreadSanitizer's ~10x
# slowdown buys nothing.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(dev release asan tsan ubsan)
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==== preset: ${preset} ===================================="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  if [ "${preset}" = "tsan" ]; then
    ctest --preset "${preset}" -j "${jobs}" \
      -R 'Campaign|ThreadPool|DeriveSeed|PropertySweep|CrashSweep|NetAlloc'
  else
    ctest --preset "${preset}" -j "${jobs}"
  fi
  # Bounded chaos smoke: a few hundred generated fault plans through the
  # full plan/inject/oracle pipeline, then 100 crash-heavy plans against
  # 64-member committees over the relay-tree overlay (relays crash and
  # restart mid-broadcast), then 200 crash-heavy plans with Paxos Commit
  # as the exit protocol (exit-assassin trigger included in the mix),
  # then 200 crash-heavy plans with coordination avoidance on (crashes
  # land mid-census, forcing the fast path's fallback/replay machinery).
  # Under asan these double as a memory audit of the crash/restart/
  # partition, tree-healing, paxos-recovery and census-fallback paths.
  case "${preset}" in
    dev)
      "build/tools/caa-chaos" --plans 200 --threads "${jobs}"
      "build/tools/caa-chaos" --plans 100 --profile crash-heavy \
        --participants 64 --tree 8 --threads "${jobs}"
      "build/tools/caa-chaos" --plans 200 --profile crash-heavy \
        --exit paxos --threads "${jobs}"
      "build/tools/caa-chaos" --plans 200 --profile crash-heavy \
        --avoid --threads "${jobs}"
      ;;
    asan)
      "build-asan/tools/caa-chaos" --plans 200 --threads "${jobs}"
      "build-asan/tools/caa-chaos" --plans 100 --profile crash-heavy \
        --participants 64 --tree 8 --threads "${jobs}"
      "build-asan/tools/caa-chaos" --plans 200 --profile crash-heavy \
        --exit paxos --threads "${jobs}"
      "build-asan/tools/caa-chaos" --plans 200 --profile crash-heavy \
        --avoid --threads "${jobs}"
      ;;
  esac
  # Bounded systematic-exploration smoke: DPOR over the §4.3 scenarios at
  # N<=3 under BOTH exit protocols, the avoidance equality gate, and a
  # crash-point sweep. Exhaustive where the state space allows it, capped
  # (--max-schedules) where it does not — every explored schedule still
  # runs the full invariant oracle, and the exit/avoid gates require
  # identical resolved-checksum classes from both variants. Under asan
  # this doubles as a memory audit of replay-from-scratch backtracking.
  case "${preset}" in
    dev)     explore="build/tools/caa-explore" ;;
    asan)    explore="build-asan/tools/caa-explore" ;;
    *)       explore="" ;;
  esac
  if [ -n "${explore}" ]; then
    "${explore}" --scenario example1 --exit both --max-schedules 20000 \
      --threads "${jobs}"
    "${explore}" --scenario flat --n 3 --raisers 2 --avoid-gate \
      --threads "${jobs}"
    "${explore}" --scenario nested --n 3 --depth 1 --threads "${jobs}"
    "${explore}" --scenario figure4 --max-schedules 5000 --threads "${jobs}"
    "${explore}" --scenario crash --n 3 --raisers 2 --committee 2 \
      --victims 2 --max-crashes 1 --threads "${jobs}"
  fi
done

# The exit seam must stay sealed: Participant may only reach exit machinery
# through the ExitProtocol interface. If barrier internals (the done
# barrier map, the pending Done, the leader decide loop) regrow inside
# src/caa/participant.*, the seam has been bypassed.
echo "==== exit-seam grep gate ==================================="
if grep -nE 'last_done_|barrier_\[|maybe_decide|on_done\b' \
    src/caa/participant.h src/caa/participant.cpp; then
  echo "exit barrier internals leaked back into src/caa/participant.*" >&2
  echo "(route them through src/exit/ — see exit/exit_protocol.h)" >&2
  exit 1
fi
echo "participant is clean of barrier internals"

# Same discipline for coordination avoidance: commutativity classification
# (the universal-cover lattice walk, the census ledger, the fallback fold)
# belongs to src/resolve/avoidance.*; Participant only routes kFastCover
# bytes and answers through the AvoidanceCoordinator interface.
echo "==== avoidance-seam grep gate =============================="
if grep -nE 'universal_cover|census_record|fall_back_census|replay_suppressed|join_hits|join_misses' \
    src/caa/participant.h src/caa/participant.cpp; then
  echo "avoidance classification leaked into src/caa/participant.*" >&2
  echo "(keep it behind resolve::AvoidanceCoordinator — see src/resolve/avoidance.h)" >&2
  exit 1
fi
echo "participant is clean of avoidance classification internals"

# And for the systematic explorer: schedule choice is the explorer's job
# (src/explore/ driving the managed network), never the protocol's. If
# Participant starts poking the managed-delivery machinery or the explorer
# namespace, scheduling policy has leaked into protocol code and every
# exploration result becomes suspect.
echo "==== explorer-seam grep gate ==============================="
if grep -nE 'managed_deliver|managed_drop|managed_in_flight|set_managed|explore::' \
    src/caa/participant.h src/caa/participant.cpp; then
  echo "scheduler-choice logic leaked into src/caa/participant.*" >&2
  echo "(delivery choice belongs to src/explore/ over net::Network's managed mode)" >&2
  exit 1
fi
echo "participant is clean of scheduler-choice logic"

# caa-inspect must keep decoding the committed dump format: render the
# golden .caafr and diff against the golden rendering the tests pin.
echo "==== caa-inspect golden decode ============================="
inspect=""
tooldir=""
for preset in "${presets[@]}"; do
  case "${preset}" in
    dev)     candidate="build/tools/caa-inspect" ;;
    release) candidate="build-release/tools/caa-inspect" ;;
    *)       continue ;;
  esac
  [ -x "${candidate}" ] && { inspect="${candidate}"; tooldir="$(dirname "${candidate}")"; }
done
if [ -n "${inspect}" ]; then
  "${inspect}" tests/golden/example1_recorder.caafr \
    | diff -u tests/golden/example1_inspect.txt - \
    || { echo "caa-inspect output drifted from tests/golden/example1_inspect.txt" >&2; exit 1; }
  echo "caa-inspect decode matches the golden"
else
  echo "skipped (no dev/release preset in this run)"
fi

# caa-report must keep rendering the committed telemetry format: the
# timeline of the golden export is byte-stable, and the committed perf
# record must compare clean against itself (the same gate PRs run against
# a freshly regenerated BENCH_throughput.json — anything beyond 15% on a
# checked deterministic metric fails).
echo "==== caa-report golden timeline + compare gate ============="
if [ -n "${tooldir}" ] && [ -x "${tooldir}/caa-report" ]; then
  "${tooldir}/caa-report" tests/golden/timeseries_flat.json \
    | diff -u tests/golden/timeseries_flat_timeline.txt - \
    || { echo "caa-report timeline drifted from tests/golden/timeseries_flat_timeline.txt" >&2; exit 1; }
  echo "caa-report timeline matches the golden"
  bench_dir="${tooldir%/tools}"
  fresh_bench=""
  if [ -x "${bench_dir}/bench/bench_throughput" ]; then
    fresh_bench="$(mktemp /tmp/BENCH_throughput.XXXXXX.json)"
    "${bench_dir}/bench/bench_throughput" --reps 1 --json "${fresh_bench}" \
      > /dev/null
    "${tooldir}/caa-report" --compare BENCH_throughput.json "${fresh_bench}" \
      || { echo "fresh bench drifted >15% from the committed BENCH_throughput.json" >&2; exit 1; }
    rm -f "${fresh_bench}"
    echo "fresh bench compares clean against the committed perf record"
  fi
else
  echo "skipped (no dev/release preset in this run)"
fi

# The observability kill switch must stay buildable: compile the library
# and the telemetry-consuming tools with the recorder, gauges, sampler and
# watchdog compiled out.
echo "==== -DCAA_OBS_DISABLED build =============================="
cmake -B build-obsoff -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS=-DCAA_OBS_DISABLED
cmake --build build-obsoff -j "${jobs}" --target caactions caa-inspect caa-report
echo "CAA_OBS_DISABLED build compiles clean"

echo "==== all presets green: ${presets[*]}"
