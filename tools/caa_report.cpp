// caa-report: render virtual-time telemetry timelines and gate regressions.
//
//   caa-report RUN.json                 sparkline timeline (+ legend)
//   caa-report RUN.json --table         aligned per-window table
//   caa-report RUN.json --json          normalized JSON re-emit
//   caa-report --compare A.json B.json [--threshold 0.15]
//       Diffs every numeric leaf of two reports (telemetry exports or
//       BENCH_*.json files). Wall-clock figures (*_ms, *_per_sec, speedup,
//       threads, nproc, repetitions) are machine-dependent and excluded.
//       Leaves drifting beyond the threshold — or present in A but gone in
//       B — fail the gate.
//
// Exit codes: 0 ok, 1 regression or unreadable input, 2 usage error.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/timeseries.h"
#include "util/json_parse.h"

namespace {

using caa::obs::TimeSeriesTable;
using caa::util::JsonValue;

void usage() {
  std::fprintf(stderr,
               "usage: caa-report RUN.json [--table] [--json]\n"
               "       caa-report --compare A.json B.json [--threshold F]\n");
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Machine-dependent figures never gate: they vary run to run on the same
/// commit. Everything else in the repo's reports is deterministic.
bool excluded_key(const std::string& key) {
  auto ends_with = [&key](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return key.size() >= n && key.compare(key.size() - n, n, suffix) == 0;
  };
  // Format revisions are metadata, not metrics: a schema bump must not
  // read as a perf regression.
  return key == "wall_ms" || key == "speedup" || key == "threads" ||
         key == "nproc" || key == "repetitions" || key == "schema_version" ||
         key == "version" || ends_with("_ms") || ends_with("_per_sec");
}

/// Flattens every numeric leaf into path -> value. Array elements are
/// labelled by their "config" / "name" / "index" member when present, so
/// paths stay stable under row reordering.
void flatten(const JsonValue& value, const std::string& path,
             std::map<std::string, double>& out) {
  switch (value.kind) {
    case JsonValue::Kind::kNumber:
      out[path] = value.number;
      return;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.members) {
        if (excluded_key(key)) continue;
        flatten(member, path.empty() ? key : path + "." + key, out);
      }
      return;
    case JsonValue::Kind::kArray: {
      for (std::size_t i = 0; i < value.elements.size(); ++i) {
        const JsonValue& element = value.elements[i];
        std::string label = std::to_string(i);
        if (element.is_object()) {
          for (const char* key : {"config", "name", "index"}) {
            if (const JsonValue* id = element.find(key);
                id != nullptr && (id->is_string() || id->is_number())) {
              label = id->is_string() ? id->string
                                      : std::to_string(id->as_int());
              break;
            }
          }
        }
        flatten(element, path + "[" + label + "]", out);
      }
      return;
    }
    default:
      return;  // strings/bools/nulls never gate
  }
}

int compare(const std::string& path_a, const std::string& path_b,
            double threshold) {
  std::string text_a;
  std::string text_b;
  if (!read_file(path_a, text_a)) {
    std::fprintf(stderr, "caa-report: cannot read %s\n", path_a.c_str());
    return 1;
  }
  if (!read_file(path_b, text_b)) {
    std::fprintf(stderr, "caa-report: cannot read %s\n", path_b.c_str());
    return 1;
  }
  const auto doc_a = caa::util::parse_json(text_a);
  const auto doc_b = caa::util::parse_json(text_b);
  if (!doc_a.is_ok() || !doc_b.is_ok()) {
    std::fprintf(stderr, "caa-report: malformed JSON: %s\n",
                 (!doc_a.is_ok() ? doc_a.status() : doc_b.status())
                     .message()
                     .c_str());
    return 1;
  }
  std::map<std::string, double> a;
  std::map<std::string, double> b;
  flatten(doc_a.value(), "", a);
  flatten(doc_b.value(), "", b);

  std::size_t checked = 0;
  std::size_t flagged = 0;
  for (const auto& [key, va] : a) {
    const auto it = b.find(key);
    if (it == b.end()) {
      std::printf("MISSING  %s (%.6g -> absent)\n", key.c_str(), va);
      ++flagged;
      continue;
    }
    ++checked;
    const double vb = it->second;
    const double scale = std::max(std::fabs(va), 1.0);
    const double drift = std::fabs(vb - va) / scale;
    if (drift > threshold) {
      std::printf("DRIFT    %s: %.6g -> %.6g (%+.1f%%)\n", key.c_str(), va,
                  vb, (vb - va) / scale * 100.0);
      ++flagged;
    }
  }
  std::size_t added = 0;
  for (const auto& [key, vb] : b) {
    if (!a.contains(key)) ++added;
  }
  std::printf(
      "compare: %zu leaves checked, %zu flagged, %zu added (threshold "
      "%.0f%%)\n",
      checked, flagged, added, threshold * 100.0);
  return flagged == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string compare_a;
  std::string compare_b;
  bool want_compare = false;
  bool want_table = false;
  bool want_json = false;
  double threshold = 0.15;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") {
      if (i + 2 >= argc) {
        usage();
        return 2;
      }
      want_compare = true;
      compare_a = argv[++i];
      compare_b = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (arg == "--table") {
      want_table = true;
    } else if (arg == "--json") {
      want_json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
      return 2;
    } else if (input.empty()) {
      input = arg;
    } else {
      usage();
      return 2;
    }
  }

  if (want_compare) {
    if (!input.empty() || want_table || want_json) {
      usage();
      return 2;
    }
    return compare(compare_a, compare_b, threshold);
  }
  if (input.empty()) {
    usage();
    return 2;
  }

  std::string text;
  if (!read_file(input, text)) {
    std::fprintf(stderr, "caa-report: cannot read %s\n", input.c_str());
    return 1;
  }
  const auto table = TimeSeriesTable::from_json(text);
  if (!table.is_ok()) {
    std::fprintf(stderr, "caa-report: %s\n",
                 table.status().message().c_str());
    return 1;
  }
  if (want_json) {
    std::fputs(table.value().to_json().c_str(), stdout);
    return 0;
  }
  if (want_table) {
    std::fputs(table.value().to_string().c_str(), stdout);
    return 0;
  }
  std::fputs(table.value().timeline().c_str(), stdout);
  return 0;
}
