// caa-explore: systematic interleaving exploration from the shell.
//
//   caa-explore --scenario example1                 DPOR over §4.3 Example 1
//   caa-explore --scenario figure4 --exit both      equality gate: barrier
//                                                   and Paxos exits resolve
//                                                   identically
//   caa-explore --scenario flat --n 3 --raisers 2 --avoid-gate
//                                                   avoidance vs engine gate
//   caa-explore --scenario crash --n 3 --raisers 2 --victims 2 --max-crashes 1
//                                                   crash-point exploration
//   caa-explore ... --full                          naive DFS baseline (for
//                                                   the reduction factor)
//   caa-explore --replay repro.txt                  re-execute a saved
//                                                   schedule artifact
//
// Exit codes: 0 clean, 1 violations / gate failure, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "explore/explorer.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: caa-explore [--scenario example1|flat|nested|figure4|crash]\n"
      "                   [--n N] [--raisers P] [--nested Q] [--depth D]\n"
      "                   [--committee C] [--exit barrier|paxos|both]\n"
      "                   [--avoid] [--avoid-gate]\n"
      "                   [--victims A,B,...] [--max-crashes K]\n"
      "                   [--bug none|exclusion|lost-leave]\n"
      "                   [--threads T] [--full] [--fail-fast] "
      "[--race-timers]\n"
      "                   [--max-schedules M] [--max-steps S] "
      "[--max-delays D]\n"
      "                   [--show-schedules] [--replay FILE]\n"
      "  --exit both     explore under each exit protocol and require the\n"
      "                  same resolved-checksum classes from both\n"
      "  --avoid-gate    explore with coordination avoidance off and on and\n"
      "                  require identical classes\n"
      "  --full          naive full DFS (no DPOR) — the baseline schedules\n"
      "                  count the reduction factor is quoted against\n"
      "  --replay FILE   re-execute one saved `schedule v1` artifact\n");
}

int run_once(const caa::explore::ModelOptions& model,
             const caa::explore::ExploreOptions& options, bool show,
             caa::explore::ExploreStats* out) {
  const caa::explore::ExploreStats stats = caa::explore::explore(model, options);
  std::printf("explore %s [%s]: %s\n", model.scenario.c_str(),
              options.dpor ? "dpor" : "full", stats.summary().c_str());
  for (const auto& [checksum, count] : stats.class_counts) {
    std::printf("  class %016llx: %llu schedule(s)\n",
                static_cast<unsigned long long>(checksum),
                static_cast<unsigned long long>(count));
  }
  if (show) {
    for (const auto& [checksum, text] : stats.classes) {
      std::printf("  first schedule of class %016llx:\n",
                  static_cast<unsigned long long>(checksum));
      std::istringstream lines(text);
      std::string line;
      while (std::getline(lines, line)) {
        std::printf("    %s\n", line.c_str());
      }
    }
  }
  for (const caa::explore::Violation& v : stats.violations) {
    std::printf("  VIOLATION: %s\n%s", v.what.c_str(), v.repro.c_str());
  }
  if (out != nullptr) *out = stats;
  return stats.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  caa::explore::ModelOptions model;
  caa::explore::ExploreOptions options;
  options.threads = 1;
  bool exit_both = false;
  bool avoid_gate = false;
  bool show = false;
  std::string replay_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      model.scenario = next();
    } else if (arg == "--n") {
      model.participants = std::atoi(next());
    } else if (arg == "--raisers") {
      model.raisers = std::atoi(next());
    } else if (arg == "--nested") {
      model.nested = std::atoi(next());
    } else if (arg == "--depth") {
      model.depth = std::atoi(next());
    } else if (arg == "--committee") {
      model.committee = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--exit") {
      const std::string value = next();
      if (value == "both") {
        exit_both = true;
      } else {
        const auto kind = caa::exit::parse_exit_kind(value);
        if (!kind.is_ok()) {
          std::fprintf(stderr, "caa-explore: %s\n",
                       kind.status().message().c_str());
          return 2;
        }
        model.exit = kind.value();
      }
    } else if (arg == "--avoid") {
      model.avoid = true;
    } else if (arg == "--avoid-gate") {
      avoid_gate = true;
    } else if (arg == "--victims") {
      std::istringstream list(next());
      std::string item;
      while (std::getline(list, item, ',')) {
        model.crash_victims.push_back(
            static_cast<std::uint32_t>(std::atoi(item.c_str())));
      }
    } else if (arg == "--max-crashes") {
      model.max_crashes = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--bug") {
      const std::string value = next();
      model.bugs.exclusion_divergence = value == "exclusion" || value == "both";
      model.bugs.lost_final_leave = value == "lost-leave" || value == "both";
      if (value != "none" && !model.bugs.exclusion_divergence &&
          !model.bugs.lost_final_leave) {
        std::fprintf(stderr, "caa-explore: unknown --bug '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--full") {
      options.dpor = false;
    } else if (arg == "--fail-fast") {
      options.fail_fast = true;
    } else if (arg == "--race-timers") {
      options.race_timers = true;
    } else if (arg == "--max-schedules") {
      options.max_schedules = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-steps") {
      options.max_steps = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-delays") {
      options.max_delays = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--show-schedules") {
      show = true;
    } else if (arg == "--replay") {
      replay_file = next();
    } else {
      usage();
      return 2;
    }
  }

  if (!replay_file.empty()) {
    std::ifstream in(replay_file);
    if (!in) {
      std::fprintf(stderr, "caa-explore: cannot read '%s'\n",
                   replay_file.c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    const auto artifact = caa::explore::parse_schedule(content.str());
    if (!artifact.is_ok()) {
      std::fprintf(stderr, "caa-explore: %s\n",
                   artifact.status().message().c_str());
      return 2;
    }
    const caa::explore::ReplayOutcome outcome =
        caa::explore::replay_schedule(artifact.value());
    std::printf("replay %s: %s (steps %zu, checksum %016llx)\n",
                replay_file.c_str(), outcome.ok ? "ok" : outcome.error.c_str(),
                outcome.steps,
                static_cast<unsigned long long>(outcome.checksum));
    return outcome.ok ? 0 : 1;
  }

  const auto valid = caa::explore::validate_model(model);
  if (!valid.is_ok()) {
    std::fprintf(stderr, "caa-explore: %s\n", valid.message().c_str());
    return 2;
  }

  int rc = 0;
  if (exit_both || avoid_gate) {
    // Equality gates: explore each variant and require the same
    // resolved-checksum class set from both sides.
    std::vector<std::pair<std::string, caa::explore::ModelOptions>> variants;
    if (exit_both) {
      caa::explore::ModelOptions barrier = model;
      barrier.exit = caa::exit::ExitKind::kBarrier;
      caa::explore::ModelOptions paxos = model;
      paxos.exit = caa::exit::ExitKind::kPaxos;
      variants.emplace_back("exit=barrier", barrier);
      variants.emplace_back("exit=paxos", paxos);
    } else {
      caa::explore::ModelOptions engine = model;
      engine.avoid = false;
      caa::explore::ModelOptions avoid = model;
      avoid.avoid = true;
      variants.emplace_back("avoid=0", engine);
      variants.emplace_back("avoid=1", avoid);
    }
    std::vector<caa::explore::ExploreStats> results(variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
      std::printf("-- %s\n", variants[i].first.c_str());
      rc |= run_once(variants[i].second, options, show, &results[i]);
    }
    const auto keys = [](const caa::explore::ExploreStats& s) {
      std::vector<std::uint64_t> k;
      for (const auto& [checksum, text] : s.classes) k.push_back(checksum);
      return k;
    };
    if (keys(results[0]) != keys(results[1])) {
      std::printf("GATE FAILED: resolved-checksum classes differ between %s "
                  "and %s\n",
                  variants[0].first.c_str(), variants[1].first.c_str());
      rc = 1;
    } else {
      std::printf("gate ok: identical resolved-checksum classes (%zu)\n",
                  results[0].classes.size());
    }
  } else {
    rc = run_once(model, options, show, nullptr);
  }
  return rc;
}
