// caa-chaos: run (or replay) deterministic chaos campaigns from the shell.
//
//   caa-chaos                                  1000 mixed plans, seed 42
//   caa-chaos --plans 10000 --threads 8        the acceptance campaign
//   caa-chaos --profile crash-heavy            pick a fault-mix profile
//   caa-chaos --dump-dir traces                flight-recorder dumps on
//                                              violation (shrunk plan)
//   caa-chaos --index 137 --show-plan          print one trial's plan and
//                                              replay just that trial
//   caa-chaos --replay repro.txt               replay a shrunk repro file
//                                              (seed + plan in one artifact)
//
// Exit codes: 0 all plans clean, 1 oracle violations, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/chaos.h"
#include "fault/repro.h"
#include "run/campaign.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: caa-chaos [--plans N] [--seed S] [--threads T]\n"
      "                 [--profile mixed|crash-heavy|network-only|"
      "resolver-hunt]\n"
      "                 [--participants MIN[:MAX]] [--tree [FANOUT]]\n"
      "                 [--exit barrier|paxos] [--avoid] [--dump-dir DIR] "
      "[--no-shrink]\n"
      "                 [--index I [--show-plan] [--trace]]\n"
      "                 [--replay FILE]\n"
      "  --participants  committee size range per trial (default 3:6)\n"
      "  --tree          relay-tree dissemination (optional fanout, "
      "default 8)\n"
      "  --exit          exit protocol per trial: the done-barrier "
      "(default)\n"
      "                  or non-blocking Paxos Commit\n"
      "  --avoid         coordination avoidance: commutative raise sets\n"
      "                  commit via the leader census fast path\n"
      "  --watchdog T    stall-diagnosis deadline in virtual ticks for\n"
      "                  --index/--replay replays (default 10000; 0 disarms)\n"
      "  --replay FILE   replay one shrunk repro artifact — the recipe a\n"
      "                  failure report prints (trial seed header + indented\n"
      "                  faultplan) — without needing the original campaign\n");
}

}  // namespace

int main(int argc, char** argv) {
  caa::fault::ChaosOptions options;
  options.threads = 0;  // CLI default: all cores (results are invariant)
  long long replay_index = -1;
  long long watchdog_deadline = 10'000;  // --index/--replay replays only
  bool show_plan = false;
  std::string replay_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--plans") {
      options.plans = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--threads") {
      options.threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--profile") {
      const auto mix = caa::fault::parse_fault_mix(next());
      if (!mix.is_ok()) {
        std::fprintf(stderr, "caa-chaos: %s\n", mix.status().message().c_str());
        return 2;
      }
      options.mix = mix.value();
    } else if (arg == "--participants") {
      const std::string range = next();
      const std::size_t colon = range.find(':');
      options.min_participants = static_cast<std::uint32_t>(
          std::strtoul(range.c_str(), nullptr, 10));
      options.max_participants =
          colon == std::string::npos
              ? options.min_participants
              : static_cast<std::uint32_t>(
                    std::strtoul(range.c_str() + colon + 1, nullptr, 10));
      if (options.min_participants < 2 ||
          options.max_participants < options.min_participants) {
        std::fprintf(stderr, "caa-chaos: bad --participants range '%s'\n",
                     range.c_str());
        return 2;
      }
    } else if (arg == "--tree") {
      options.overlay.mode = caa::overlay::OverlayParams::Mode::kTree;
      // Optional fanout operand (next arg if numeric).
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(argv[i + 1][0]))) {
        options.overlay.fanout =
            static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      }
    } else if (arg == "--exit") {
      const auto kind = caa::exit::parse_exit_kind(next());
      if (!kind.is_ok()) {
        std::fprintf(stderr, "caa-chaos: %s\n",
                     kind.status().message().c_str());
        return 2;
      }
      options.exit = kind.value();
    } else if (arg == "--avoid") {
      options.avoid = true;
    } else if (arg == "--dump-dir") {
      options.dump_dir = next();
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--index") {
      replay_index = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--replay") {
      replay_file = next();
    } else if (arg == "--watchdog") {
      watchdog_deadline = std::strtoll(next(), nullptr, 10);
    } else if (arg == "--show-plan") {
      show_plan = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else {
      usage();
      return 2;
    }
  }

  if (!replay_file.empty()) {
    // Replay a saved repro recipe: the artifact is self-contained (seed,
    // mix, participant count, exit protocol and the shrunk plan all live in
    // the text), so no campaign context is needed.
    std::ifstream in(replay_file);
    if (!in) {
      std::fprintf(stderr, "caa-chaos: cannot read '%s'\n",
                   replay_file.c_str());
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    const auto repro = caa::fault::parse_repro(content.str());
    if (!repro.is_ok()) {
      std::fprintf(stderr, "caa-chaos: %s\n",
                   repro.status().message().c_str());
      return 2;
    }
    const caa::fault::ReproArtifact& artifact = repro.value();
    options.watchdog_deadline = watchdog_deadline;
    options.mix = artifact.mix;
    options.min_participants = artifact.participants;
    options.max_participants = artifact.participants;
    if (show_plan) std::fputs(artifact.plan.to_text().c_str(), stdout);
    std::string trace_log;
    std::string critical_path;
    std::string watchdog_report;
    const caa::run::WorldResult result = caa::fault::run_chaos_trial(
        artifact.seed, artifact.plan, options, 0, &critical_path,
        options.trace ? &trace_log : nullptr, &watchdog_report);
    if (!trace_log.empty()) std::fputs(trace_log.c_str(), stdout);
    if (!result.ok && !critical_path.empty()) {
      std::fputs(critical_path.c_str(), stdout);
    }
    if (!watchdog_report.empty()) std::fputs(watchdog_report.c_str(), stdout);
    std::printf("replay %s: %s (events %lld, checksum %016llx)\n",
                replay_file.c_str(), result.ok ? "ok" : result.error.c_str(),
                static_cast<long long>(result.events),
                static_cast<unsigned long long>(result.checksum));
    return result.ok ? 0 : 1;
  }

  if (replay_index >= 0) {
    // Replay one trial exactly as the campaign would run it — plus the
    // liveness watchdog, whose diagnoses (stuck scope, phase, awaited
    // members, causal tail) print alongside the critical path. Arming it
    // never changes the trial's checksum.
    options.watchdog_deadline = watchdog_deadline;
    const std::uint64_t trial_seed =
        caa::run::derive_seed(options.seed, static_cast<std::size_t>(replay_index));
    const caa::fault::FaultPlan plan =
        caa::fault::chaos_plan(trial_seed, options);
    if (show_plan) std::fputs(plan.to_text().c_str(), stdout);
    std::string trace_log;
    std::string critical_path;
    std::string watchdog_report;
    const caa::run::WorldResult result = caa::fault::run_chaos_trial(
        trial_seed, plan, options, static_cast<std::size_t>(replay_index),
        &critical_path, options.trace ? &trace_log : nullptr,
        &watchdog_report);
    if (!trace_log.empty()) std::fputs(trace_log.c_str(), stdout);
    if (!result.ok && !critical_path.empty()) {
      std::fputs(critical_path.c_str(), stdout);
    }
    if (!watchdog_report.empty()) std::fputs(watchdog_report.c_str(), stdout);
    std::printf("trial %lld: %s (events %lld, checksum %016llx)\n",
                replay_index, result.ok ? "ok" : result.error.c_str(),
                static_cast<long long>(result.events),
                static_cast<unsigned long long>(result.checksum));
    return result.ok ? 0 : 1;
  }

  const caa::fault::ChaosReport report = caa::fault::run_chaos_campaign(options);
  std::printf(
      "chaos: %zu plans, profile %s, seed %llu, %u thread(s): "
      "%zu violation(s)\n",
      options.plans, std::string(caa::fault::fault_mix_name(options.mix)).c_str(),
      static_cast<unsigned long long>(options.seed),
      report.campaign.threads_used, report.violations);
  std::printf("  merged checksum %016llx, total events %lld, wall %.0f ms\n",
              static_cast<unsigned long long>(report.campaign.merged_checksum),
              static_cast<long long>(report.campaign.total_events),
              report.campaign.wall_ms);
  if (!report.ok()) {
    std::fputs(report.failure_report().c_str(), stdout);
    std::fputs("\n", stdout);
    return 1;
  }
  return 0;
}
