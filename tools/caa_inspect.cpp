// caa-inspect: decode and query flight-recorder dumps.
//
//   caa-inspect DUMP.caafr                     full report
//   caa-inspect DUMP.caafr --action 0          one action's records/paths
//   caa-inspect DUMP.caafr --node 2            records touching node/object 2
//   caa-inspect DUMP.caafr --kind Exception    one wire message kind
//   caa-inspect DUMP.caafr --chain 42          causal chain ending at #42
//   caa-inspect DUMP.caafr --no-records        critical paths only
//   caa-inspect DUMP.caafr --no-paths          records only
//
// Exit codes: 0 ok, 1 undecodable dump, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/message.h"
#include "obs/causal.h"
#include "obs/flight_recorder.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: caa-inspect DUMP.caafr [--action SCOPE] [--node N] "
               "[--kind NAME|NUM] [--chain ID] [--no-records] [--no-paths]\n");
}

/// Accepts a numeric MsgKind or its kind_name() (e.g. "Exception", "Ack").
bool parse_kind(const std::string& arg, std::uint32_t& out) {
  char* end = nullptr;
  const unsigned long numeric = std::strtoul(arg.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && !arg.empty()) {
    out = static_cast<std::uint32_t>(numeric);
    return true;
  }
  static constexpr caa::net::MsgKind kKnown[] = {
      caa::net::MsgKind::kTransportAck, caa::net::MsgKind::kException,
      caa::net::MsgKind::kHaveNested, caa::net::MsgKind::kNestedCompleted,
      caa::net::MsgKind::kAck, caa::net::MsgKind::kCommit,
      caa::net::MsgKind::kCrRaise, caa::net::MsgKind::kCrCommit,
      caa::net::MsgKind::kCrAck, caa::net::MsgKind::kArcheReport,
      caa::net::MsgKind::kArcheConcerted,
      caa::net::MsgKind::kCentralException, caa::net::MsgKind::kCentralFreeze,
      caa::net::MsgKind::kCentralFrozenAck, caa::net::MsgKind::kCentralCommit,
      caa::net::MsgKind::kActionJoin, caa::net::MsgKind::kActionJoinAck,
      caa::net::MsgKind::kActionDone, caa::net::MsgKind::kActionLeave,
      caa::net::MsgKind::kActionAborted, caa::net::MsgKind::kTxnOpRequest,
      caa::net::MsgKind::kTxnOpReply, caa::net::MsgKind::kTxnPrepare,
      caa::net::MsgKind::kTxnVote, caa::net::MsgKind::kTxnDecision,
      caa::net::MsgKind::kTxnDecisionAck, caa::net::MsgKind::kHeartbeat,
      caa::net::MsgKind::kAppData,
  };
  for (const caa::net::MsgKind kind : kKnown) {
    if (arg == caa::net::kind_name(kind)) {
      out = static_cast<std::uint32_t>(kind);
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string path = argv[1];
  caa::obs::InspectOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--action" && has_value) {
      options.scope = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--node" && has_value) {
      options.node =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--kind" && has_value) {
      std::uint32_t kind = 0;
      if (!parse_kind(argv[++i], kind)) {
        std::fprintf(stderr, "caa-inspect: unknown message kind '%s'\n",
                     argv[i]);
        return 2;
      }
      options.kind = kind;
    } else if (arg == "--chain" && has_value) {
      options.chain = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--no-records") {
      options.show_records = false;
    } else if (arg == "--no-paths") {
      options.show_paths = false;
    } else {
      usage();
      return 2;
    }
  }

  const caa::Result<caa::obs::FlightDump> dump =
      caa::obs::FlightRecorder::read_dump(path);
  if (!dump.is_ok()) {
    std::fprintf(stderr, "caa-inspect: %s: %s\n", path.c_str(),
                 dump.status().message().c_str());
    return 1;
  }
  const std::string report = caa::obs::inspect_report(dump.value(), options);
  std::fwrite(report.data(), 1, report.size(), stdout);
  return 0;
}
